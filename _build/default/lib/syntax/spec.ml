type t = {
  automata : (string * Usage.Usage_automaton.t) list;
  services : (string * Core.Hexpr.t) list;
  clients : (string * Core.Hexpr.t) list;
  plans : (string * Core.Plan.t) list;
  programs : (string * Lambda_sec.Ast.term) list;
  networks : (string * (string * string) list) list;
}

let empty =
  {
    automata = [];
    services = [];
    clients = [];
    plans = [];
    programs = [];
    networks = [];
  }
let repo t = t.services
let find_automaton t name = List.assoc_opt name t.automata
let find_client t name = List.assoc_opt name t.clients
let find_plan t name = List.assoc_opt name t.plans
let find_program t name = List.assoc_opt name t.programs

let resolve_network t name =
  match List.assoc_opt name t.networks with
  | None -> Error (Printf.sprintf "unknown network %s" name)
  | Some entries ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (cname, pname) :: rest -> (
            match (find_client t cname, find_plan t pname) with
            | None, _ -> Error (Printf.sprintf "unknown client %s" cname)
            | _, None -> Error (Printf.sprintf "unknown plan %s" pname)
            | Some h, Some p -> go ((p, (cname, h)) :: acc) rest)
      in
      go [] entries

let pp ppf t =
  let section name pp_item ppf items =
    List.iter (fun (n, x) -> Fmt.pf ppf "%s %s = %a@." name n pp_item x) items
  in
  section "policy" Usage.Usage_automaton.pp ppf t.automata;
  section "service" Core.Hexpr.pp ppf t.services;
  section "client" Core.Hexpr.pp ppf t.clients;
  section "plan" Core.Plan.pp ppf t.plans;
  section "program" Lambda_sec.Ast.pp ppf t.programs;
  List.iter
    (fun (n, entries) ->
      Fmt.pf ppf "network %s = {%a}@." n
        Fmt.(
          list ~sep:(any ", ") (fun ppf (c, p) -> pf ppf "%s with %s" c p))
        entries)
    t.networks

(* ---------- parseable rendering ---------- *)

let pp_guard_opt ppf g =
  match (g : Usage.Guard.t) with
  | Usage.Guard.True -> ()
  | g -> Fmt.pf ppf " when %a" Usage.Guard.pp g

let pp_automaton_susf ppf (name, (u : Usage.Usage_automaton.t)) =
  Fmt.pf ppf "policy %s(%a) {@." name
    Fmt.(list ~sep:(any ", ") string)
    u.params;
  Fmt.pf ppf "  start q%d;@." u.init;
  Fmt.pf ppf "  offending %a;@."
    Fmt.(list ~sep:(any ", ") (fmt "q%d"))
    u.offending;
  List.iter
    (fun (e : Usage.Usage_automaton.edge) ->
      Fmt.pf ppf "  q%d -- %s(x)%a --> q%d;@." e.src e.ev_name pp_guard_opt
        e.guard e.dst)
    u.edges;
  Fmt.pf ppf "}@."

let pp_plan_susf ppf p =
  Fmt.pf ppf "{ %a }"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (r, l) -> pf ppf "%d -> %s" r l))
    (Core.Plan.bindings p)

let rec pp_term_susf ppf (t : Lambda_sec.Ast.term) =
  let module A = Lambda_sec.Ast in
  match t with
  | A.Unit -> Fmt.string ppf "()"
  | A.Bool b -> Fmt.bool ppf b
  | A.Int n -> Fmt.int ppf n
  | A.Str s -> Fmt.string ppf s
  | A.Var x -> Fmt.string ppf x
  | A.Fun { self = None; param; param_ty; body; _ } ->
      Fmt.pf ppf "fun (%s : %a) -> %a" param pp_ty_susf param_ty pp_term_susf
        body
  | A.Fun { self = Some f; param; param_ty; ret_ty; body } ->
      Fmt.pf ppf "rec %s (%s : %a) : %a -> %a" f param pp_ty_susf param_ty
        (Fmt.option pp_ty_susf) ret_ty pp_term_susf body
  | A.Let ("_", a, b) -> Fmt.pf ppf "{ %a; %a }" pp_term_susf a pp_block b
  | A.Let (x, a, b) ->
      Fmt.pf ppf "let %s = %a in %a" x pp_term_susf a pp_term_susf b
  | A.If (c, a, b) ->
      Fmt.pf ppf "if %a then %a else %a" pp_term_susf c pp_term_susf a
        pp_term_susf b
  | A.Eq (a, b) -> Fmt.pf ppf "(%a == %a)" pp_term_susf a pp_term_susf b
  | A.Binop (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_term_susf a Lambda_sec.Ast.pp_binop op
        pp_term_susf b
  | A.Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp_term_susf a pp_term_susf b
  | A.Fst a -> Fmt.pf ppf "fst (%a)" pp_term_susf a
  | A.Snd a -> Fmt.pf ppf "snd (%a)" pp_term_susf a
  | A.Event e -> Fmt.pf ppf "#%a" Usage.Event.pp e
  | A.Framed (p, body) ->
      Fmt.pf ppf "frame %s { %a }" (Usage.Policy.id p) pp_block body
  | A.Send a -> Fmt.pf ppf "send %s" a
  | A.Recv bs -> pp_handlers ppf "recv" bs
  | A.Select bs -> pp_handlers ppf "select" bs
  | A.Request { rid; policy = None; body } ->
      Fmt.pf ppf "req(%d){ %a }" rid pp_block body
  | A.Request { rid; policy = Some p; body } ->
      Fmt.pf ppf "req(%d: %s){ %a }" rid (Usage.Policy.id p) pp_block body
  | A.App (a, b) -> Fmt.pf ppf "(%a %a)" pp_term_susf a pp_term_susf b

and pp_block ppf (t : Lambda_sec.Ast.term) =
  match t with
  | Lambda_sec.Ast.Let ("_", a, b) ->
      Fmt.pf ppf "%a; %a" pp_term_susf a pp_block b
  | _ -> pp_term_susf ppf t

and pp_handlers ppf kw bs =
  Fmt.pf ppf "%s { %a }" kw
    Fmt.(
      list ~sep:(any " | ") (fun ppf (a, t) ->
          pf ppf "%s -> %a" a pp_term_susf t))
    bs

and pp_ty_susf ppf (ty : Lambda_sec.Ast.ty) =
  match ty with
  | Lambda_sec.Ast.TUnit -> Fmt.string ppf "unit"
  | Lambda_sec.Ast.TBool -> Fmt.string ppf "bool"
  | Lambda_sec.Ast.TInt -> Fmt.string ppf "int"
  | Lambda_sec.Ast.TStr -> Fmt.string ppf "str"
  | Lambda_sec.Ast.TFun (a, _, b) ->
      Fmt.pf ppf "(%a -> %a)" pp_ty_susf a pp_ty_susf b
  | Lambda_sec.Ast.TPair (a, b) ->
      Fmt.pf ppf "(%a * %a)" pp_ty_susf a pp_ty_susf b

let to_susf ppf t =
  List.iter (pp_automaton_susf ppf) t.automata;
  List.iter
    (fun (n, h) -> Fmt.pf ppf "service %s = %a;@." n Core.Hexpr.pp h)
    t.services;
  List.iter
    (fun (n, h) -> Fmt.pf ppf "client %s = %a;@." n Core.Hexpr.pp h)
    t.clients;
  List.iter
    (fun (n, p) -> Fmt.pf ppf "plan %s = %a;@." n pp_plan_susf p)
    t.plans;
  List.iter
    (fun (n, tm) -> Fmt.pf ppf "program %s = %a;@." n pp_term_susf tm)
    t.programs;
  List.iter
    (fun (n, entries) ->
      Fmt.pf ppf "network %s = { %a };@." n
        Fmt.(
          list ~sep:(any ", ") (fun ppf (c, p) -> pf ppf "%s with %s" c p))
        entries)
    t.networks

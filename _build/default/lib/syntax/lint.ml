type severity = Error | Warning | Info

type finding = { severity : severity; subject : string; message : string }

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp_finding ppf f =
  Fmt.pf ppf "%a: %s: %s" pp_severity f.severity f.subject f.message

let duplicates names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) -> if String.equal a b then a :: go rest else go rest
    | _ -> []
  in
  List.sort_uniq String.compare (go sorted)

(* every (direction, channel) pair used anywhere in an expression *)
let rec channel_uses (h : Core.Hexpr.t) =
  match h with
  | Core.Hexpr.Nil | Core.Hexpr.Var _ | Core.Hexpr.Ev _ | Core.Hexpr.Close _
  | Core.Hexpr.Frame_close _ ->
      []
  | Core.Hexpr.Mu (_, b)
  | Core.Hexpr.Open (_, b)
  | Core.Hexpr.Frame (_, b) ->
      channel_uses b
  | Core.Hexpr.Ext bs ->
      List.concat_map (fun (a, k) -> (`In, a) :: channel_uses k) bs
  | Core.Hexpr.Int bs ->
      List.concat_map (fun (a, k) -> (`Out, a) :: channel_uses k) bs
  | Core.Hexpr.Seq (a, b) | Core.Hexpr.Choice (a, b) ->
      channel_uses a @ channel_uses b

let spec (s : Spec.t) =
  let findings = ref [] in
  let add severity subject message =
    findings := { severity; subject; message } :: !findings
  in
  let exprs =
    List.map (fun (n, h) -> ("service " ^ n, h)) s.Spec.services
    @ List.map (fun (n, h) -> ("client " ^ n, h)) s.Spec.clients
  in

  (* duplicate names *)
  List.iter
    (fun (kind, names) ->
      List.iter
        (fun n -> add Error (kind ^ " " ^ n) "declared more than once")
        (duplicates names))
    [
      ("service", List.map fst s.Spec.services);
      ("client", List.map fst s.Spec.clients);
      ("plan", List.map fst s.Spec.plans);
      ("program", List.map fst s.Spec.programs);
    ];

  (* well-formedness *)
  List.iter
    (fun (subject, h) ->
      match Core.Hexpr.well_formed h with
      | Ok () -> ()
      | Error e ->
          add Error subject (Fmt.str "%a" Core.Hexpr.pp_wf_error e))
    exprs;

  (* plans *)
  let known_rids =
    List.concat_map
      (fun (_, h) -> List.map (fun r -> r.Core.Hexpr.rid) (Core.Hexpr.requests h))
      exprs
    |> List.sort_uniq Int.compare
  in
  List.iter
    (fun (pname, plan) ->
      List.iter
        (fun (rid, loc) ->
          if not (List.mem_assoc loc s.Spec.services) then
            add Error ("plan " ^ pname)
              (Printf.sprintf "request %d bound to unknown service %s" rid loc);
          if not (List.mem rid known_rids) then
            add Warning ("plan " ^ pname)
              (Printf.sprintf "request %d is not opened by any declaration" rid))
        (Core.Plan.bindings plan))
    s.Spec.plans;

  (* client requests with no plan coverage *)
  List.iter
    (fun (cname, h) ->
      List.iter
        (fun r ->
          let rid = r.Core.Hexpr.rid in
          let covered =
            List.exists
              (fun (_, plan) -> Core.Plan.find plan rid <> None)
              s.Spec.plans
          in
          if not covered then
            add Warning ("client " ^ cname)
              (Printf.sprintf "request %d is not covered by any declared plan" rid);
          if r.Core.Hexpr.policy = None then
            add Info ("client " ^ cname)
              (Printf.sprintf "request %d imposes no policy" rid))
        (Core.Hexpr.requests h))
    s.Spec.clients;

  (* policies vs the spec's ground events *)
  let ground_events =
    List.concat_map (fun (_, h) -> Core.Hexpr.events h) exprs
    |> List.sort_uniq Usage.Event.compare
  in
  let ground_names =
    List.map (fun (e : Usage.Event.t) -> e.name) ground_events
    |> List.sort_uniq String.compare
  in
  let policies =
    List.concat_map (fun (_, h) -> Core.Hexpr.policies h) exprs
    |> List.sort_uniq Usage.Policy.compare
  in
  List.iter
    (fun p ->
      let observed = Usage.Policy_ops.event_names p in
      let unheard =
        List.filter (fun n -> not (List.mem n ground_names)) observed
      in
      List.iter
        (fun n ->
          add Warning
            ("policy " ^ Usage.Policy.id p)
            (Printf.sprintf "observes event %s, which nothing in this specification fires" n))
        unheard;
      if
        ground_events <> []
        && Usage.Policy_ops.vacuous ~alphabet:ground_events p
      then
        add Warning
          ("policy " ^ Usage.Policy.id p)
          "cannot be violated by any event of this specification (vacuous)")
    policies;

  (* channel polarity coverage *)
  let uses = List.concat_map (fun (_, h) -> channel_uses h) exprs in
  let chans =
    List.map snd uses |> List.sort_uniq String.compare
  in
  List.iter
    (fun c ->
      let has d = List.exists (fun (d', c') -> d' = d && String.equal c c') uses in
      if has `Out && not (has `In) then
        add Warning ("channel " ^ c) "has outputs but no input anywhere";
      if has `In && not (has `Out) then
        add Warning ("channel " ^ c) "has inputs but no output anywhere")
    chans;

  (* networks *)
  List.iter
    (fun (n, _) ->
      match Spec.resolve_network s n with
      | Ok _ -> ()
      | Error msg -> add Error ("network " ^ n) msg)
    s.Spec.networks;

  let rank f = match f.severity with Error -> 0 | Warning -> 1 | Info -> 2 in
  List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) (List.rev !findings)

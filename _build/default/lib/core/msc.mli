(** Message sequence charts from execution traces: render a
    {!Simulate.trace} as a Mermaid [sequenceDiagram] (sessions open and
    close as activations, synchronisations as arrows, access events as
    notes). Handy for documentation and for eyeballing interleavings. *)

type t

val of_trace : Simulate.trace -> t

val participants : t -> string list
(** Locations in order of first appearance. *)

val pp_mermaid : t Fmt.t

val pp_text : t Fmt.t
(** A plain-text rendering (one interaction per line). *)

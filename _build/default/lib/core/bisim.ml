module type LTS = sig
  type state
  type label

  val compare_state : state -> state -> int
  val compare_label : label -> label -> int
  val transitions : state -> (label * state) list
  val is_tau : label -> bool
end

module Make (L : LTS) = struct
  module SMap = Map.Make (struct
    type t = L.state

    let compare = L.compare_state
  end)

  let reachable trans roots =
    let rec loop seen = function
      | [] -> seen
      | s :: todo ->
          let fresh =
            trans s |> List.map snd
            |> List.filter (fun q -> not (SMap.mem q seen))
            |> List.sort_uniq L.compare_state
          in
          let seen = List.fold_left (fun m q -> SMap.add q () m) seen fresh in
          loop seen (fresh @ todo)
    in
    let seen0 =
      List.fold_left (fun m s -> SMap.add s () m) SMap.empty roots
    in
    loop seen0 roots |> SMap.bindings |> List.map fst

  (* Partition refinement: iterate block signatures to a fixed point.
     [trans] is the (possibly saturated) transition function; labels are
     ordered by the explicit [cmp_label] (never polymorphic compare). *)
  let refine ~cmp_label trans states =
    let block = ref (List.fold_left (fun m s -> SMap.add s 0 m) SMap.empty states) in
    let cmp_target (l1, b1) (l2, b2) =
      match cmp_label l1 l2 with 0 -> Int.compare b1 b2 | c -> c
    in
    let changed = ref true in
    while !changed do
      changed := false;
      let signature s =
        let targets =
          trans s
          |> List.map (fun (l, q) -> (l, SMap.find q !block))
          |> List.sort_uniq cmp_target
        in
        (SMap.find s !block, targets)
      in
      let table = Hashtbl.create 97 in
      let fresh = ref 0 in
      let assignment =
        List.map
          (fun s ->
            let sg = signature s in
            let b =
              match Hashtbl.find_opt table sg with
              | Some b -> b
              | None ->
                  let b = !fresh in
                  incr fresh;
                  Hashtbl.replace table sg b;
                  b
            in
            (s, b))
          states
      in
      List.iter
        (fun (s, b) ->
          if SMap.find s !block <> b then begin
            block := SMap.add s b !block;
            changed := true
          end)
        assignment
    done;
    !block

  let equivalent ~cmp_label trans a b =
    let states = reachable trans [ a; b ] in
    let block = refine ~cmp_label trans states in
    SMap.find a block = SMap.find b block

  let strong a b = equivalent ~cmp_label:L.compare_label L.transitions a b

  (* Weak transitions: s ⇒τ⇒ s' is the reflexive-transitive τ-closure;
     s ⇒a⇒ s' (a visible) is τ* a τ*. Computed with memoised closures
     over the finite reachable space. *)
  let weak a b =
    let states = reachable L.transitions [ a; b ] in
    let tau_closure =
      (* Kleene iteration of the τ-successor relation over the finite
         state space; ordered maps keep state comparison structural. *)
      let closure =
        ref
          (List.fold_left
             (fun m s -> SMap.add s (SMap.singleton s ()) m)
             SMap.empty states)
      in
      let stable = ref false in
      while not !stable do
        stable := true;
        List.iter
          (fun s ->
            let current = SMap.find s !closure in
            let extended =
              List.fold_left
                (fun acc (l, q) ->
                  if L.is_tau l then
                    SMap.union (fun _ () () -> Some ()) acc (SMap.find q !closure)
                  else acc)
                current (L.transitions s)
            in
            if SMap.cardinal extended <> SMap.cardinal current then begin
              closure := SMap.add s extended !closure;
              stable := false
            end)
          states
      done;
      fun s -> SMap.find s !closure
    in
    let weak_trans s =
      let from_closure =
        SMap.bindings (tau_closure s) |> List.map fst
      in
      let visible =
        List.concat_map
          (fun s1 ->
            List.concat_map
              (fun (l, q) ->
                if L.is_tau l then []
                else
                  SMap.bindings (tau_closure q)
                  |> List.map (fun (q', ()) -> (`Vis l, q')))
              (L.transitions s1))
          from_closure
      in
      let silent =
        List.map (fun s' -> (`Tau, s')) from_closure
      in
      List.sort_uniq
        (fun (l1, q1) (l2, q2) ->
          match (l1, l2) with
          | `Tau, `Tau -> L.compare_state q1 q2
          | `Tau, `Vis _ -> -1
          | `Vis _, `Tau -> 1
          | `Vis a, `Vis b -> (
              match L.compare_label a b with
              | 0 -> L.compare_state q1 q2
              | c -> c))
        (silent @ visible)
    in
    let cmp_label l1 l2 =
      match (l1, l2) with
      | `Tau, `Tau -> 0
      | `Tau, `Vis _ -> -1
      | `Vis _, `Tau -> 1
      | `Vis x, `Vis y -> L.compare_label x y
    in
    equivalent ~cmp_label weak_trans a b

  module PSet = Set.Make (struct
    type t = L.state * L.state

    let compare (a1, b1) (a2, b2) =
      match L.compare_state a1 a2 with
      | 0 -> L.compare_state b1 b2
      | c -> c
  end)

  (* Greatest simulation, computed with an assumption set. *)
  let simulates a b =
    let rec go assumed (a, b) =
      if PSet.mem (a, b) assumed then (true, assumed)
      else
        let assumed = PSet.add (a, b) assumed in
        let tb = L.transitions b in
        List.fold_left
          (fun (ok, assumed) (l, a') ->
            if not ok then (false, assumed)
            else
              let candidates =
                List.filter_map
                  (fun (l', b') ->
                    if L.compare_label l l' = 0 then Some b' else None)
                  tb
              in
              let rec try_candidates assumed = function
                | [] -> (false, assumed)
                | b' :: rest -> (
                    match go assumed (a', b') with
                    | true, assumed -> (true, assumed)
                    | false, _ -> try_candidates assumed rest)
              in
              try_candidates assumed candidates)
          (true, assumed) (L.transitions a)
    in
    fst (go PSet.empty (a, b))

  let classes roots =
    let states = reachable L.transitions roots in
    let block = refine ~cmp_label:L.compare_label L.transitions states in
    List.map (fun s -> (s, SMap.find s block)) states
end

module Hexpr_lts = struct
  type state = Hexpr.t
  type label = Action.t

  let compare_state = Hexpr.compare
  let compare_label = Action.compare
  let transitions = Semantics.transitions
  let is_tau = function Action.Tau -> true | _ -> false
end

module H = Make (Hexpr_lts)

module Contract_lts = struct
  type state = Contract.t
  type label = Contract.dir * string

  let compare_state = Contract.compare

  let compare_label (d1, a1) (d2, a2) =
    match Stdlib.compare d1 d2 with 0 -> String.compare a1 a2 | c -> c

  let transitions c =
    List.map (fun (d, a, k) -> ((d, a), k)) (Contract.transitions c)

  let is_tau _ = false
end

module C = Make (Contract_lts)

let hexpr_strong = H.strong
let hexpr_simulates = H.simulates
let contract_simulates = C.simulates
let hexpr_weak = H.weak
let contract_strong = C.strong
let contract_weak = C.weak

(** Execution histories [η ∈ (Ev ∪ Frm)*] (paper §3.1). *)

type item =
  | Ev of Usage.Event.t  (** an access event [α] *)
  | Op of Usage.Policy.t  (** framing opening [Lφ] *)
  | Cl of Usage.Policy.t  (** framing closing [Mφ] *)

type t = item list
(** Chronological order (oldest first). *)

val empty : t
val snoc : t -> item -> t

val flatten : t -> Usage.Event.t list
(** [η♭]: the history with all framing events erased. *)

val active : t -> Usage.Policy.t list
(** [AP(η)]: the multiset of policies opened and not yet closed, in
    opening order. *)

val is_balanced : t -> bool
(** Every opened framing is closed, well-nested-ness not required — the
    paper's balance is multiset-based via [AP]; a history is balanced
    when no framing remains active and no close occurs without a
    matching open. *)

val is_prefix_of_balanced : t -> bool
(** No close occurs without a matching earlier open (the histories that
    show up when executing a network). *)

val prefixes : t -> t list
(** All prefixes, shortest first, including the empty one and [t]. *)

val of_actions : Action.t list -> t
(** Project a stand-alone trace onto its loggable part
    (events and framings; communications are discarded). *)

val equal : t -> t -> bool
val pp_item : item Fmt.t
val pp : t Fmt.t

(** Compliance [H_c ⊢ H_s] (paper Definition 4), implemented literally:
    the largest relation such that, at every pair of contracts reachable
    through synchronised steps,

    + (1) for all ready sets [C] of the client and [S] of the server,
      either [C = ∅] (the client may terminate) or [C ∩ S̄ ≠ ∅] (some
      action of [C] has its co-action in [S]); and
    + (2) the relation is closed under synchronised transitions.

    This module is the {e reference} implementation; the decision
    procedure of Theorem 1 lives in {!Product} and the two are
    cross-validated by the test suite. *)

val sync_successors : Contract.t -> Contract.t -> (string * (Contract.t * Contract.t)) list
(** Pairs reachable in one synchronisation [H₁ --a--> H₁', H₂ --co(a)--> H₂'],
    tagged by channel. *)

val locally_ok : Contract.t -> Contract.t -> bool
(** Condition (1) of Definition 4 at a single pair. *)

val compliant : Contract.t -> Contract.t -> bool
(** [compliant client server] decides [client ⊢ server] by checking
    {!locally_ok} on every pair reachable from the initial one (the
    greatest-fixed-point reading of Definition 4). *)

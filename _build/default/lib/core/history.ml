type item = Ev of Usage.Event.t | Op of Usage.Policy.t | Cl of Usage.Policy.t
type t = item list

let empty = []
let snoc h i = h @ [ i ]

let flatten h =
  List.filter_map (function Ev e -> Some e | Op _ | Cl _ -> None) h

let active h =
  (* Remove one matching instance per close, scanning left to right. *)
  let remove_one p l =
    let rec go acc = function
      | [] -> List.rev acc
      | q :: rest ->
          if Usage.Policy.equal p q then List.rev_append acc rest
          else go (q :: acc) rest
    in
    go [] l
  in
  List.fold_left
    (fun acc -> function
      | Ev _ -> acc
      | Op p -> acc @ [ p ]
      | Cl p -> remove_one p acc)
    [] h

let is_prefix_of_balanced h =
  let ok, _ =
    List.fold_left
      (fun (ok, open_) item ->
        if not ok then (false, open_)
        else
          match item with
          | Ev _ -> (ok, open_)
          | Op p -> (ok, p :: open_)
          | Cl p ->
              if List.exists (Usage.Policy.equal p) open_ then
                let rec drop = function
                  | [] -> []
                  | q :: rest ->
                      if Usage.Policy.equal p q then rest else q :: drop rest
                in
                (ok, drop open_)
              else (false, open_))
      (true, []) h
  in
  ok

let is_balanced h = is_prefix_of_balanced h && active h = []

let prefixes h =
  let rec go acc pref = function
    | [] -> List.rev (pref :: acc)
    | x :: rest -> go (pref :: acc) (pref @ [ x ]) rest
  in
  go [] [] h

let of_actions acts =
  List.filter_map
    (function
      | Action.Evt e -> Some (Ev e)
      | Action.Frm_open p -> Some (Op p)
      | Action.Frm_close p -> Some (Cl p)
      | Action.In _ | Action.Out _ | Action.Tau | Action.Op _ | Action.Cl _ ->
          None)
    acts

let item_equal a b =
  match (a, b) with
  | Ev e, Ev f -> Usage.Event.equal e f
  | Op p, Op q | Cl p, Cl q -> Usage.Policy.equal p q
  | (Ev _ | Op _ | Cl _), _ -> false

let equal = List.equal item_equal

let pp_item ppf = function
  | Ev e -> Usage.Event.pp ppf e
  | Op p -> Fmt.pf ppf "[%s" (Usage.Policy.id p)
  | Cl p -> Fmt.pf ppf "%s]" (Usage.Policy.id p)

let pp ppf h =
  match h with
  | [] -> Fmt.string ppf "<empty>"
  | _ -> Fmt.(list ~sep:(any " ") pp_item) ppf h

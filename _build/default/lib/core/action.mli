(** Transition labels of the stand-alone semantics:
    [λ ∈ Comm ∪ Ev ∪ Frm] (paper §3). *)

type t =
  | In of string  (** input [a] *)
  | Out of string  (** output [ā] *)
  | Tau  (** silent (synchronisation, or an unguarded-choice commit) *)
  | Evt of Usage.Event.t  (** access event [α] *)
  | Op of Hexpr.req  (** [open_{r,φ}] *)
  | Cl of Hexpr.req  (** [close_{r,φ}] *)
  | Frm_open of Usage.Policy.t  (** [Lφ] *)
  | Frm_close of Usage.Policy.t  (** [Mφ] *)

val co : t -> t option
(** The co-action: [co (In a) = Out a] and vice versa; [None] otherwise. *)

val is_comm : t -> bool
(** Membership in [Comm] (inputs, outputs, [τ], opens, closes). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

lib/core/export.mli: Contract Fmt Format Hexpr Network Plan

lib/core/history.ml: Action Fmt List Usage

lib/core/planner.mli: Fmt Hashtbl Hexpr Netcheck Network Plan Product

lib/core/history.mli: Action Fmt Usage

lib/core/netcheck.mli: Fmt Hexpr Network Plan Usage

lib/core/planner.ml: Contract Fmt Hashtbl Hexpr List Netcheck Plan Product Result

lib/core/ready.ml: Contract Fmt List Set Stdlib String

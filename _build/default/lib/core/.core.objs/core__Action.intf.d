lib/core/action.mli: Fmt Hexpr Usage

lib/core/bisim.mli: Contract Hexpr

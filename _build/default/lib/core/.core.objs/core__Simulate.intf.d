lib/core/simulate.mli: Fmt Network

lib/core/hexpr.mli: Fmt Usage

lib/core/discovery.mli: Contract Fmt Hexpr Netcheck Network Product Usage

lib/core/simulate.ml: Fmt Hashtbl Hexpr List Network Option Printf Random String Usage Validity

lib/core/semantics.ml: Action Hexpr List Map Set

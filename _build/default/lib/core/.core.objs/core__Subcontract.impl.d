lib/core/subcontract.ml: Contract List Set

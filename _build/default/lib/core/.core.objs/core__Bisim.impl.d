lib/core/bisim.ml: Action Contract Hashtbl Hexpr Int List Map Semantics Set Stdlib String

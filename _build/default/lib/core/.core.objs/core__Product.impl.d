lib/core/product.ml: Compliance Contract Fmt Hashtbl List Map Option Queue String

lib/core/netcheck.ml: Action Fmt Hexpr List Map Network Plan Queue Semantics Usage Validity

lib/core/network.mli: Fmt Hexpr History Plan Usage Validity

lib/core/contract.ml: Fmt Hexpr Int List Printf Set String

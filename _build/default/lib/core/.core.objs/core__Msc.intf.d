lib/core/msc.mli: Fmt Simulate

lib/core/contract.mli: Fmt Hexpr

lib/core/network.ml: Action Fmt Hexpr History List Plan Semantics String Usage Validity

lib/core/hexpr.ml: Fmt Int List Option Printf Result String Usage

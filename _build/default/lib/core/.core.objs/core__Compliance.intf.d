lib/core/compliance.mli: Contract

lib/core/ready.mli: Contract Fmt Set

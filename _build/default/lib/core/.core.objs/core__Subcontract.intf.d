lib/core/subcontract.mli: Contract

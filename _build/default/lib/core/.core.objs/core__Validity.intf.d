lib/core/validity.mli: Fmt Hexpr History Usage

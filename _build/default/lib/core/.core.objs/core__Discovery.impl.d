lib/core/discovery.ml: Contract Fmt Hexpr Int List Netcheck Plan Product Result String Subcontract Usage

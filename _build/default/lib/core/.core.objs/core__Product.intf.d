lib/core/product.mli: Contract Fmt

lib/core/action.ml: Fmt Hexpr Int String Usage

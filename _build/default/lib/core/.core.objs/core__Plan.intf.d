lib/core/plan.mli: Fmt

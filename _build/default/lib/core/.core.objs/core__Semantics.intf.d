lib/core/semantics.mli: Action Hexpr Map Set

lib/core/compliance.ml: Contract List Ready Set String

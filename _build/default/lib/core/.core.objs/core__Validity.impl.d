lib/core/validity.ml: Action Fmt Hexpr History Int List Semantics Set String Usage

lib/core/export.ml: Action Contract Fmt Hexpr List Map Network Semantics String Usage Validity

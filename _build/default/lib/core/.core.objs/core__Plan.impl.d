lib/core/plan.ml: Fmt Int List Map Printf String

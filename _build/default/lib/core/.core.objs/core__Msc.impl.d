lib/core/msc.ml: Fmt Hashtbl Hexpr List Network Option Simulate Usage

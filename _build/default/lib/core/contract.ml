type t =
  | Nil
  | Var of string
  | Mu of string * t
  | Ext of (string * t) list
  | Int of (string * t) list
  | Seq of t * t

exception Unprojectable of string

let rec compare x y =
  let tag = function
    | Nil -> 0
    | Var _ -> 1
    | Mu _ -> 2
    | Ext _ -> 3
    | Int _ -> 4
    | Seq _ -> 5
  in
  match (x, y) with
  | Nil, Nil -> 0
  | Var a, Var b -> String.compare a b
  | Mu (a, h), Mu (b, k) -> (
      match String.compare a b with 0 -> compare h k | c -> c)
  | Ext a, Ext b | Int a, Int b ->
      List.compare
        (fun (c1, h) (c2, k) ->
          match String.compare c1 c2 with 0 -> compare h k | c -> c)
        a b
  | Seq (a, b), Seq (c, d) -> (
      match compare a c with 0 -> compare b d | c -> c)
  | (Nil | Var _ | Mu _ | Ext _ | Int _ | Seq _), _ ->
      Int.compare (tag x) (tag y)

let equal x y = compare x y = 0
let nil = Nil
let var x = Var x

let rec seq a b =
  match (a, b) with
  | Nil, c | c, Nil -> c
  | Seq (x, y), c -> seq x (seq y c)
  | _ -> Seq (a, b)

let check_branches kind bs =
  if bs = [] then invalid_arg (kind ^ ": empty choice");
  let chans = List.map fst bs in
  if List.length (List.sort_uniq String.compare chans) <> List.length chans
  then invalid_arg (kind ^ ": duplicate channel");
  List.sort (fun (a, _) (b, _) -> String.compare a b) bs

let branch bs = Ext (check_branches "Contract.branch" bs)
let select bs = Int (check_branches "Contract.select" bs)
let recv a = branch [ (a, Nil) ]
let send a = select [ (a, Nil) ]

let rec free_vars = function
  | Nil -> []
  | Var x -> [ x ]
  | Mu (x, b) -> List.filter (fun y -> y <> x) (free_vars b)
  | Ext bs | Int bs -> List.concat_map (fun (_, h) -> free_vars h) bs
  | Seq (a, b) -> free_vars a @ free_vars b

let mu x body =
  match body with
  | Nil -> Nil
  | _ -> if List.mem x (free_vars body) then Mu (x, body) else body

let rec project (h : Hexpr.t) : t =
  match h with
  | Hexpr.Nil | Hexpr.Ev _ | Hexpr.Close _ | Hexpr.Frame_close _ -> Nil
  | Hexpr.Var x -> Var x
  | Hexpr.Mu (x, b) -> mu x (project b)
  | Hexpr.Ext bs -> Ext (List.map (fun (a, k) -> (a, project k)) bs)
  | Hexpr.Int bs -> Int (List.map (fun (a, k) -> (a, project k)) bs)
  | Hexpr.Seq (a, b) -> seq (project a) (project b)
  | Hexpr.Open (_, _) -> Nil (* whole nested sessions are erased *)
  | Hexpr.Frame (_, b) -> project b
  | Hexpr.Choice (a, b) ->
      let ca = project a and cb = project b in
      if equal ca cb then ca
      else if equal ca Nil then cb
      else if equal cb Nil then ca
      else
        raise
          (Unprojectable
             (Fmt.str "Choice branches project to distinct contracts"))

type dir = I | O

let co = function I -> O | O -> I

let fresh_counter = ref 0

let fresh base =
  incr fresh_counter;
  Printf.sprintf "%s_%d" base !fresh_counter

let rec subst x ~by c =
  match c with
  | Nil -> c
  | Var y -> if String.equal y x then by else c
  | Mu (y, b) ->
      if String.equal y x then c
      else if List.mem y (free_vars by) then begin
        let y' = fresh y in
        Mu (y', subst x ~by (subst y ~by:(Var y') b))
      end
      else Mu (y, subst x ~by b)
  | Ext bs -> Ext (List.map (fun (a, k) -> (a, subst x ~by k)) bs)
  | Int bs -> Int (List.map (fun (a, k) -> (a, subst x ~by k)) bs)
  | Seq (a, b) -> seq (subst x ~by a) (subst x ~by b)

let rec transitions = function
  | Nil | Var _ -> []
  | Mu (x, b) -> transitions (subst x ~by:(Mu (x, b)) b)
  | Ext bs -> List.map (fun (a, k) -> (I, a, k)) bs
  | Int bs -> List.map (fun (a, k) -> (O, a, k)) bs
  | Seq (a, b) -> List.map (fun (d, ch, a') -> (d, ch, seq a' b)) (transitions a)

let is_terminated c = equal c Nil

module CSet = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let reachable ?(limit = 100_000) c0 =
  let rec loop seen = function
    | [] -> seen
    | c :: todo ->
        if CSet.cardinal seen > limit then
          failwith "Contract.reachable: state limit exceeded"
        else
          let succs =
            transitions c
            |> List.map (fun (_, _, k) -> k)
            |> List.filter (fun k -> not (CSet.mem k seen))
            |> List.sort_uniq compare
          in
          let seen = List.fold_left (fun s k -> CSet.add k s) seen succs in
          loop seen (succs @ todo)
  in
  CSet.elements (loop (CSet.singleton c0) [ c0 ])

let rec dual = function
  | Nil -> Nil
  | Var x -> Var x
  | Mu (x, b) -> Mu (x, dual b)
  | Ext bs -> Int (List.map (fun (a, k) -> (a, dual k)) bs)
  | Int bs -> Ext (List.map (fun (a, k) -> (a, dual k)) bs)
  | Seq (a, b) -> Seq (dual a, dual b)

let rec size = function
  | Nil | Var _ -> 1
  | Mu (_, b) -> 1 + size b
  | Ext bs | Int bs -> List.fold_left (fun n (_, h) -> n + 1 + size h) 1 bs
  | Seq (a, b) -> 1 + size a + size b

let rec pp ppf = function
  | Nil -> Fmt.string ppf "eps"
  | Var x -> Fmt.string ppf x
  | Mu (x, b) -> Fmt.pf ppf "mu %s. %a" x pp b
  | Ext bs -> pp_choice ppf "?" " + " bs
  | Int bs -> pp_choice ppf "!" " (+) " bs
  | Seq (a, b) -> Fmt.pf ppf "%a . %a" pp_atom a pp b

and pp_choice ppf dir sep bs =
  let pp_branch ppf (a, h) =
    match h with
    | Nil -> Fmt.pf ppf "%s%s" a dir
    | _ -> Fmt.pf ppf "%s%s.%a" a dir pp_atom h
  in
  match bs with
  | [ b ] -> pp_branch ppf b
  | _ ->
      let pp_sep ppf () = Fmt.string ppf sep in
      Fmt.pf ppf "(%a)" (Fmt.list ~sep:pp_sep pp_branch) bs

and pp_atom ppf c =
  match c with
  | Seq _ | Mu _ -> Fmt.pf ppf "(%a)" pp c
  | Ext [ (_, h) ] | Int [ (_, h) ] when not (equal h Nil) ->
      Fmt.pf ppf "(%a)" pp c
  | Nil | Var _ | Ext _ | Int _ -> pp ppf c

let to_string c = Fmt.str "%a" pp c

module Map = Map.Make (Hexpr)
module Set = Set.Make (Hexpr)

let is_terminated h = Hexpr.equal h Hexpr.nil

let rec transitions (h : Hexpr.t) : (Action.t * Hexpr.t) list =
  match h with
  | Nil | Var _ -> []
  | Ev e -> [ (Action.Evt e, Hexpr.nil) ]
  | Ext bs -> List.map (fun (a, k) -> (Action.In a, k)) bs
  | Int bs -> List.map (fun (a, k) -> (Action.Out a, k)) bs
  | Mu (x, b) -> transitions (Hexpr.unfold x b)
  | Seq (h1, h2) ->
      (* [seq] keeps sequences ε-free on the left, so only the Conc rule
         applies. *)
      List.map (fun (l, h1') -> (l, Hexpr.seq h1' h2)) (transitions h1)
  | Open (r, b) -> [ (Action.Op r, Hexpr.seq b (Hexpr.close ~rid:r.rid ?policy:r.policy ())) ]
  | Close r -> [ (Action.Cl r, Hexpr.nil) ]
  | Frame (p, b) -> [ (Action.Frm_open p, Hexpr.seq b (Hexpr.frame_close p)) ]
  | Frame_close p -> [ (Action.Frm_close p, Hexpr.nil) ]
  | Choice (a, b) -> [ (Action.Tau, a); (Action.Tau, b) ]

let step h l =
  transitions h
  |> List.filter_map (fun (l', h') -> if Action.equal l l' then Some h' else None)

let reachable ?(limit = 100_000) h0 =
  let rec loop seen = function
    | [] -> seen
    | h :: todo ->
        if Set.cardinal seen > limit then
          failwith "Semantics.reachable: state limit exceeded (ill-formed recursion?)"
        else
          let succs =
            transitions h |> List.map snd
            |> List.filter (fun k -> not (Set.mem k seen))
            |> List.sort_uniq Hexpr.compare
          in
          let seen = List.fold_left (fun s k -> Set.add k s) seen succs in
          loop seen (succs @ todo)
  in
  Set.elements (loop (Set.singleton h0) [ h0 ])

let traces ~depth h0 =
  let rec go d h =
    if d = 0 then [ [] ]
    else
      match transitions h with
      | [] -> [ [] ]
      | ts ->
          List.concat_map
            (fun (l, h') -> List.map (fun tr -> l :: tr) (go (d - 1) h'))
            ts
  in
  go depth h0

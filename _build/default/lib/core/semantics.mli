(** Stand-alone operational semantics of history expressions (the rules
    I-Choice, E-Choice, α-Acc, S-Open, P-Open, Conc, Rec of §3), plus the
    τ-commit of the unguarded-choice extension. *)

val transitions : Hexpr.t -> (Action.t * Hexpr.t) list
(** All one-step transitions [H --λ--> H']. *)

val step : Hexpr.t -> Action.t -> Hexpr.t list
(** Targets of transitions labelled by the given action. *)

val is_terminated : Hexpr.t -> bool
(** [H ≡ ε]. *)

val reachable : ?limit:int -> Hexpr.t -> Hexpr.t list
(** All expressions reachable from the argument. Well-formed expressions
    (guarded tail recursion) have finitely many reachable states; the
    optional [limit] (default 100_000) guards against ill-formed input.
    Raises [Failure] when the limit is hit. *)

val traces : depth:int -> Hexpr.t -> Action.t list list
(** All maximal traces of length at most [depth] (exhaustive unfolding;
    meant for tests and small examples). *)

module Map : Map.S with type key = Hexpr.t
module Set : Set.S with type elt = Hexpr.t

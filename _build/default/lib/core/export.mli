(** GraphViz renderings of the library's transition systems, for
    inspection and documentation: the stand-alone LTS of a history
    expression, and the abstract configuration graph a planned client
    explores (the state space {!Netcheck} model-checks). *)

val hexpr_dot : Hexpr.t Fmt.t
(** The reachable LTS of the expression; the terminated state is a
    double circle. *)

val contract_dot : Contract.t Fmt.t

val client_graph_dot :
  Network.repo -> Plan.t -> string * Hexpr.t -> Format.formatter -> unit
(** The abstract configuration graph of one planned client: nodes are
    (component, policy-cursor) states, edges are enabled network moves;
    blocked moves are rendered dashed and red with the violated policy.
    Stuck states (no enabled move, not terminated) are double circles. *)

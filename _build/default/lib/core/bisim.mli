(** Strong and weak bisimilarity on the finite transition systems of
    this library (history expressions and contracts).

    Used to validate the semantics-preserving transformations —
    {!Hexpr.normalize}, unfolding, the parser's canonicalisation — with a
    much finer equivalence than trace or validity agreement, and exposed
    for clients who want to compare services behaviourally.

    Both relations are computed by partition refinement over the union
    of the two reachable state spaces (finite for well-formed terms).
    Weak bisimilarity abstracts the [τ] commits of the unguarded-choice
    extension. *)

module type LTS = sig
  type state
  type label

  val compare_state : state -> state -> int
  val compare_label : label -> label -> int

  val transitions : state -> (label * state) list

  val is_tau : label -> bool
  (** Which labels are silent (for {!Make.weak}). *)
end

module Make (L : LTS) : sig
  val strong : L.state -> L.state -> bool

  val weak : L.state -> L.state -> bool
  (** Branching-insensitive to [τ]: [s ⇒a⇒ s'] is [τ* a τ*] (and [τ*]
      for the silent label itself). *)

  val classes : L.state list -> (L.state * int) list
  (** Strong-bisimilarity equivalence classes of the given states and
      everything reachable from them, as a state → class-id map. *)

  val simulates : L.state -> L.state -> bool
  (** [simulates a b]: [b] (strongly) simulates [a] — every move of [a]
      can be matched by [b], coinductively. Bisimilarity implies mutual
      simulation; the converse does not hold in general. *)
end

(** {1 Instances} *)

val hexpr_strong : Hexpr.t -> Hexpr.t -> bool
val hexpr_weak : Hexpr.t -> Hexpr.t -> bool
val contract_strong : Contract.t -> Contract.t -> bool
val contract_weak : Contract.t -> Contract.t -> bool
(** Contracts have no silent moves, so weak = strong; provided for
    symmetry. *)

val hexpr_simulates : Hexpr.t -> Hexpr.t -> bool
val contract_simulates : Contract.t -> Contract.t -> bool

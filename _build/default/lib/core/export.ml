let escaped pp_v v = String.escaped (Fmt.str "%a" pp_v v)

let hexpr_dot ppf h0 =
  let states = Semantics.reachable h0 in
  let index =
    List.fold_left
      (fun (i, m) s -> (i + 1, Semantics.Map.add s i m))
      (0, Semantics.Map.empty)
      states
    |> snd
  in
  let id s = Semantics.Map.find s index in
  Fmt.pf ppf "digraph hexpr {@.  rankdir=LR;@.";
  List.iter
    (fun s ->
      let shape = if Semantics.is_terminated s then "doublecircle" else "circle" in
      Fmt.pf ppf "  %d [shape=%s,label=\"%s\"];@." (id s) shape
        (escaped Hexpr.pp s))
    states;
  Fmt.pf ppf "  init [shape=point]; init -> %d;@." (id h0);
  List.iter
    (fun s ->
      List.iter
        (fun (l, s') ->
          Fmt.pf ppf "  %d -> %d [label=\"%s\"];@." (id s) (id s')
            (escaped Action.pp l))
        (Semantics.transitions s))
    states;
  Fmt.pf ppf "}@."

module CMap = Map.Make (struct
  type t = Contract.t

  let compare = Contract.compare
end)

let contract_dot ppf c0 =
  let states = Contract.reachable c0 in
  let index =
    List.fold_left
      (fun (i, m) s -> (i + 1, CMap.add s i m))
      (0, CMap.empty) states
    |> snd
  in
  let id s = CMap.find s index in
  let pp_label ppf (d, a) =
    match d with
    | Contract.I -> Fmt.pf ppf "%s?" a
    | Contract.O -> Fmt.pf ppf "%s!" a
  in
  Fmt.pf ppf "digraph contract {@.  rankdir=LR;@.";
  List.iter
    (fun s ->
      let shape = if Contract.is_terminated s then "doublecircle" else "circle" in
      Fmt.pf ppf "  %d [shape=%s,label=\"%s\"];@." (id s) shape
        (escaped Contract.pp s))
    states;
  Fmt.pf ppf "  init [shape=point]; init -> %d;@." (id c0);
  List.iter
    (fun s ->
      List.iter
        (fun (d, a, s') ->
          Fmt.pf ppf "  %d -> %d [label=\"%s\"];@." (id s) (id s')
            (escaped pp_label (d, a)))
        (Contract.transitions s))
    states;
  Fmt.pf ppf "}@."

module AState = struct
  type t = Network.component * Validity.Abstract.t

  let compare (c1, a1) (c2, a2) =
    match Network.compare_component c1 c2 with
    | 0 -> Validity.Abstract.compare a1 a2
    | c -> c
end

module AMap = Map.Make (AState)

let client_graph_dot repo plan (loc, h0) ppf =
  let universe =
    List.concat_map Hexpr.policies (h0 :: List.map snd repo)
    |> List.sort_uniq Usage.Policy.compare
  in
  let push abs items =
    List.fold_left
      (fun acc item ->
        match acc with
        | Error _ as e -> e
        | Ok a -> Validity.Abstract.push a item)
      (Ok abs) items
  in
  let start = (Network.Leaf (loc, h0), Validity.Abstract.init universe) in
  let index = ref (AMap.singleton start 0) in
  let next = ref 1 in
  let enabled_edges = ref [] and blocked_edges = ref [] in
  let id st =
    match AMap.find_opt st !index with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        index := AMap.add st i !index;
        i
  in
  let rec explore ((comp, abs) as st) =
    let i = id st in
    Network.component_moves repo plan comp
    |> List.iter (fun (g, items, comp') ->
           match push abs items with
           | Ok abs' ->
               let st' = (comp', abs') in
               let fresh = not (AMap.mem st' !index) in
               enabled_edges := (i, g, id st') :: !enabled_edges;
               if fresh then explore st'
           | Error p -> blocked_edges := (i, g, p) :: !blocked_edges)
  in
  explore start;
  Fmt.pf ppf "digraph client {@.  rankdir=LR;@.";
  AMap.iter
    (fun ((comp, _) as st) i ->
      let has_move =
        List.exists (fun (src, _, _) -> src = i) !enabled_edges
      in
      let stuck = (not (Network.terminated comp)) && not has_move in
      let shape = if stuck then "doublecircle" else "circle" in
      let color = if stuck then ",color=red" else "" in
      ignore st;
      Fmt.pf ppf "  %d [shape=%s%s,label=\"%s\"];@." i shape color
        (escaped Network.pp_component comp))
    !index;
  Fmt.pf ppf "  init [shape=point]; init -> 0;@.";
  List.iter
    (fun (i, g, j) ->
      Fmt.pf ppf "  %d -> %d [label=\"%s\"];@." i j
        (escaped Network.pp_glabel g))
    (List.rev !enabled_edges);
  List.iter
    (fun (i, g, p) ->
      Fmt.pf ppf
        "  %d -> %d [style=dashed,color=red,label=\"%s blocked by %s\"];@." i i
        (escaped Network.pp_glabel g)
        (String.escaped (Usage.Policy.id p)))
    (List.rev !blocked_edges);
  Fmt.pf ppf "}@."

(** The subcontract (server-substitutability) preorder of the contract
    theory the paper builds on [Castagna–Gesbert–Padovani 2009],
    specialised to the paper's fragment (output-guarded internal and
    input-guarded external choices, guarded tail recursion):

    [s ⊑ s'] — every client compliant with [s] is compliant with [s'] —
    so a repository may transparently substitute [s'] for [s], and a
    planner may search for services {e up to} [⊑].

    On this fragment the preorder has a simple coinductive
    characterisation, computed by {!refines}:
    - a terminated server refines and is refined by anything whose
      clients are terminated (the only client compliant with [ε] is
      [ε], which complies with every server);
    - on an input frontier, the substitute must offer {e at least} the
      same inputs (and no outputs), with refining continuations;
    - on an output frontier, the substitute must choose among {e at
      most} the same outputs (at least one, and no inputs), with
      refining continuations.

    Soundness ([refines s s' = true] implies substitutability) is
    property-tested against {!Product.compliant} on random
    client/server/server triples. *)

val refines : Contract.t -> Contract.t -> bool
(** [refines s s'] decides [s ⊑ s']. *)

val equivalent : Contract.t -> Contract.t -> bool
(** Mutual refinement. *)

val widest_servers :
  (string * Contract.t) list -> Contract.t -> (string * Contract.t) list
(** [widest_servers repo s]: the named contracts of [repo] that refine
    [s] — the candidates that may serve any client that [s] serves. *)

module Pair = struct
  type t = Contract.t * Contract.t

  let compare (a1, b1) (a2, b2) =
    match Contract.compare a1 a2 with
    | 0 -> Contract.compare b1 b2
    | c -> c
end

module PSet = Set.Make (Pair)

let split_frontier c =
  let ts = Contract.transitions c in
  let ins =
    List.filter_map
      (fun (d, a, k) -> if d = Contract.I then Some (a, k) else None)
      ts
  in
  let outs =
    List.filter_map
      (fun (d, a, k) -> if d = Contract.O then Some (a, k) else None)
      ts
  in
  (ins, outs)

(* Greatest fixed point: assume pairs already under scrutiny hold. *)
let refines s s' =
  let rec go assumed (s, s') =
    if PSet.mem (s, s') assumed then (true, assumed)
    else if Contract.is_terminated s then (true, assumed)
    else begin
      let assumed = PSet.add (s, s') assumed in
      let ins1, outs1 = split_frontier s in
      let ins2, outs2 = split_frontier s' in
      if outs1 = [] then
        (* input frontier: s' must offer at least the same inputs *)
        if outs2 <> [] then (false, assumed)
        else
          List.fold_left
            (fun (ok, assumed) (a, k1) ->
              if not ok then (false, assumed)
              else
                match List.assoc_opt a ins2 with
                | None -> (false, assumed)
                | Some k2 -> go assumed (k1, k2))
            (true, assumed) ins1
      else if ins1 = [] then
        (* output frontier: s' must choose among at most the same outputs *)
        if ins2 <> [] || outs2 = [] then (false, assumed)
        else
          List.fold_left
            (fun (ok, assumed) (a, k2) ->
              if not ok then (false, assumed)
              else
                match List.assoc_opt a outs1 with
                | None -> (false, assumed)
                | Some k1 -> go assumed (k1, k2))
            (true, assumed) outs2
      else
        (* mixed frontiers cannot arise in the fragment; be conservative *)
        (false, assumed)
    end
  in
  fst (go PSet.empty (s, s'))

let equivalent a b = refines a b && refines b a

let widest_servers repo s =
  List.filter (fun (_, s') -> refines s s') repo

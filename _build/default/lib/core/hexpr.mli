(** History expressions (paper §3, Definition 1).

    [H ::= ε | h | μh.H | Σᵢ aᵢ.Hᵢ | ⊕ᵢ āᵢ.Hᵢ | α | H·H
         | open_{r,φ} H close_{r,φ} | φ[H]]

    plus the two {e residual} forms produced by the operational semantics
    ([close_{r,φ}] pending after an [open], and [Mφ] pending after a
    framing has been entered), and one documented extension:
    [Choice (H₁, H₂)], the unguarded internal choice [H₁ + H₂] of
    Bartoletti–Degano–Ferrari, required by the λ-calculus effect system
    for conditionals. The paper's §3–§4 fragment never uses [Choice].

    Terms are quotiented by [ε·H ≡ H ≡ H·ε] through the {!seq} smart
    constructor. *)

type req = { rid : int; policy : Usage.Policy.t option }
(** A service request: unique identifier [r] and the policy [φ] the
    client imposes on the session ([None] encodes the paper's [∅]). *)

type t = private
  | Nil  (** ε *)
  | Var of string  (** recursion variable [h] *)
  | Mu of string * t  (** [μh.H], guarded tail recursion *)
  | Ext of (string * t) list  (** [Σᵢ aᵢ.Hᵢ], input-guarded external choice *)
  | Int of (string * t) list  (** [⊕ᵢ āᵢ.Hᵢ], output-guarded internal choice *)
  | Ev of Usage.Event.t  (** access event [α] *)
  | Seq of t * t  (** [H·H'] *)
  | Open of req * t  (** [open_{r,φ} H close_{r,φ}] *)
  | Close of req  (** residual [close_{r,φ}] *)
  | Frame of Usage.Policy.t * t  (** safety framing [φ[H]] *)
  | Frame_close of Usage.Policy.t  (** residual [Mφ] *)
  | Choice of t * t  (** extension: unguarded internal choice [H + H'] *)

(** {1 Smart constructors} *)

val nil : t
val var : string -> t

val mu : string -> t -> t
(** [mu h body]; [μh.ε] collapses to [ε] and an unused binder is elided. *)

val branch : (string * t) list -> t
(** External choice [Σᵢ aᵢ.Hᵢ]. Raises [Invalid_argument] on an empty
    list or duplicate channels. *)

val select : (string * t) list -> t
(** Internal choice [⊕ᵢ āᵢ.Hᵢ]. Same restrictions as {!branch}. *)

val recv : string -> t
(** [recv a] = [branch [a, nil]]. *)

val send : string -> t
(** [send a] = [select [a, nil]]. *)

val ev : ?arg:Usage.Value.t -> string -> t
val event : Usage.Event.t -> t
val seq : t -> t -> t
val seq_all : t list -> t
val open_ : rid:int -> ?policy:Usage.Policy.t -> t -> t
val close : rid:int -> ?policy:Usage.Policy.t -> unit -> t
val frame : Usage.Policy.t -> t -> t
val frame_close : Usage.Policy.t -> t
val choice : t -> t -> t

module Infix : sig
  val ( @. ) : t -> t -> t
  (** Sequential composition, right-associative. *)
end

(** {1 Structure} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Structural; policies are compared by identifier. *)

val compare_req : req -> req -> int
val pp_req : req Fmt.t

val size : t -> int
(** Number of AST nodes. *)

val free_vars : t -> string list
val is_closed : t -> bool

val subst : string -> by:t -> t -> t
(** Capture-avoiding substitution. *)

val unfold : string -> t -> t
(** [unfold h body] is [body{μh.body / h}] — one unfolding of [μh.body]. *)

val normalize : t -> t
(** Attach sequential continuations to choice prefixes:
    [(Σ aᵢ.Hᵢ)·K ↦ Σ aᵢ.(Hᵢ·K)] and likewise for [⊕], recursively.
    LTS-preserving; the canonical form produced by the parser. *)

(** {1 Syntactic inventories} *)

val requests : t -> req list
(** All [Open] requests, outermost first, including nested ones. *)

val policies : t -> Usage.Policy.t list
(** Policies from framings and requests, duplicate-free. *)

val channels : t -> string list

val events : t -> Usage.Event.t list
(** The {e inventory} of events occurring syntactically, sorted and
    duplicate-free — not a trace. To check a policy against the traces
    of an expression, use {!Validity.check_expr} on [φ[H]]. *)

(** {1 Well-formedness (paper §3: guarded tail recursion etc.)} *)

type wf_error =
  | Unguarded_recursion of string
      (** a recursion variable occurs with no communication prefix above it *)
  | Non_tail_recursion of string
      (** a recursion variable occurs in non-tail position *)
  | Unbound_variable of string
  | Duplicate_request of int  (** a request identifier is reused *)

val well_formed : t -> (unit, wf_error) result
val pp_wf_error : wf_error Fmt.t

val pp : t Fmt.t
val to_string : t -> string

type t =
  | In of string
  | Out of string
  | Tau
  | Evt of Usage.Event.t
  | Op of Hexpr.req
  | Cl of Hexpr.req
  | Frm_open of Usage.Policy.t
  | Frm_close of Usage.Policy.t

let co = function
  | In a -> Some (Out a)
  | Out a -> Some (In a)
  | Tau | Evt _ | Op _ | Cl _ | Frm_open _ | Frm_close _ -> None

let is_comm = function
  | In _ | Out _ | Tau | Op _ | Cl _ -> true
  | Evt _ | Frm_open _ | Frm_close _ -> false

let compare x y =
  let tag = function
    | In _ -> 0
    | Out _ -> 1
    | Tau -> 2
    | Evt _ -> 3
    | Op _ -> 4
    | Cl _ -> 5
    | Frm_open _ -> 6
    | Frm_close _ -> 7
  in
  match (x, y) with
  | In a, In b | Out a, Out b -> String.compare a b
  | Tau, Tau -> 0
  | Evt a, Evt b -> Usage.Event.compare a b
  | Op r, Op s | Cl r, Cl s -> Hexpr.compare_req r s
  | Frm_open p, Frm_open q | Frm_close p, Frm_close q ->
      Usage.Policy.compare p q
  | ( (In _ | Out _ | Tau | Evt _ | Op _ | Cl _ | Frm_open _ | Frm_close _),
      _ ) ->
      Int.compare (tag x) (tag y)

let equal x y = compare x y = 0

let pp ppf = function
  | In a -> Fmt.pf ppf "%s?" a
  | Out a -> Fmt.pf ppf "%s!" a
  | Tau -> Fmt.string ppf "tau"
  | Evt e -> Fmt.pf ppf "#%a" Usage.Event.pp e
  | Op r -> Fmt.pf ppf "open_%a" Hexpr.pp_req r
  | Cl r -> Fmt.pf ppf "close_%a" Hexpr.pp_req r
  | Frm_open p -> Fmt.pf ppf "[%s" (Usage.Policy.id p)
  | Frm_close p -> Fmt.pf ppf "%s]" (Usage.Policy.id p)

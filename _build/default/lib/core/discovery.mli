(** Call-by-contract service discovery ([5]): query the repository with
    a request — the client-side body and the policy to impose — and get
    back the services that could serve it, with the reason the others
    cannot.

    This is the planner's inner loop exposed as a search API: a
    candidate is {e usable} iff the singleton network
    [open_{r,φ} body close_{r,φ}] planned onto it is both compliant
    (Theorem 1) and secure (abstract reachability). *)

type rejection =
  | Not_compliant of Product.counterexample
  | Insecure of Netcheck.stuck
  | Outside_fragment of string
      (** the body's projection left the §4 fragment *)

type candidate = {
  loc : string;
  verdict : (Netcheck.stats, rejection) result;
}

val query :
  ?policy:Usage.Policy.t ->
  Network.repo ->
  body:Hexpr.t ->
  candidate list
(** All repository services, usable ones first. [body] is the
    client-side protocol of the request (communications, events,
    possibly nested requests of its own are {e not} supported here — use
    the {!Planner} for multi-request compositions). *)

val usable :
  ?policy:Usage.Policy.t -> Network.repo -> body:Hexpr.t -> string list
(** Locations of the usable candidates. *)

val substitutes : Network.repo -> string -> (string * Contract.t) list
(** [substitutes repo loc]: the other services whose contracts refine
    [loc]'s — any client served by [loc] is served by them
    ({!Subcontract}). *)

val pp_candidate : candidate Fmt.t

(** Symbolic finite automata: transitions are labelled by {e guards}, a
    predicate over concrete input letters. This is the execution model of
    usage automata [Bartoletti 2009]: a parametric automaton, once
    instantiated, reads a trace of concrete events; a letter matching no
    outgoing guard of a state leaves that state unchanged (the implicit
    [*] self-loops of the paper's Fig. 1). *)

module type LABEL = sig
  type t
  (** Symbolic transition label (a guard). *)

  type letter
  (** Concrete input letter (a ground event). *)

  val sat : t -> letter -> bool
  (** Does the letter satisfy the guard? *)

  val pp : t Fmt.t
  val pp_letter : letter Fmt.t
end

module Make (L : LABEL) : sig
  type state = int

  module States : Set.S with type elt = state

  type t

  val create :
    init:state ->
    finals:state list ->
    trans:(state * L.t * state) list ->
    t
  (** Final states are the {e offending} states: reaching one means the
      trace read so far violates the policy (default-accept discipline). *)

  val initial : t -> state
  val finals : t -> States.t
  val transitions : t -> (state * L.t * state) list

  val step : t -> States.t -> L.letter -> States.t
  (** One step of every tracked state. A state with no satisfied outgoing
      guard persists (implicit self-loop). *)

  val run : t -> L.letter list -> States.t

  val violates : t -> L.letter list -> bool
  (** [true] iff reading the trace can reach an offending state. *)

  val first_violation : t -> L.letter list -> int option
  (** Index (0-based) of the letter whose consumption first reaches an
      offending state, if any; [Some (-1)] when the initial state is
      itself offending (the empty trace already violates). *)

  val concrete_transitions :
    t -> L.letter list -> (state * L.letter * state) list
  (** Ground the automaton over a finite alphabet of letters, making the
      implicit self-loops explicit. The result is a concrete transition
      relation suitable for {!Nfa.Make.create}. *)

  val pp : t Fmt.t
end

module Make (A : Nfa.ALPHABET) = struct
  type t =
    | Empty
    | Eps
    | Sym of A.t
    | Alt of t * t
    | Cat of t * t
    | Star of t

  let empty = Empty
  let eps = Eps
  let sym a = Sym a

  let alt a b =
    match (a, b) with
    | Empty, c | c, Empty -> c
    | _ -> if a = b then a else Alt (a, b)

  let cat a b =
    match (a, b) with
    | Empty, _ | _, Empty -> Empty
    | Eps, c | c, Eps -> c
    | _ -> Cat (a, b)

  let star = function
    | Empty | Eps -> Eps
    | Star _ as s -> s
    | r -> Star r

  let of_word w = List.fold_right (fun a acc -> cat (Sym a) acc) w Eps

  let any_of syms =
    List.fold_left (fun acc a -> alt acc (Sym a)) Empty syms

  let opt r = alt Eps r
  let plus r = cat r (star r)

  let rec nullable = function
    | Empty | Sym _ -> false
    | Eps | Star _ -> true
    | Alt (a, b) -> nullable a || nullable b
    | Cat (a, b) -> nullable a && nullable b

  let rec deriv x = function
    | Empty | Eps -> Empty
    | Sym a -> if A.compare a x = 0 then Eps else Empty
    | Alt (a, b) -> alt (deriv x a) (deriv x b)
    | Cat (a, b) ->
        let left = cat (deriv x a) b in
        if nullable a then alt left (deriv x b) else left
    | Star r as s -> cat (deriv x r) s

  let matches r w = nullable (List.fold_left (fun r x -> deriv x r) r w)

  module N = Nfa.Make (A)

  (* Thompson construction with ε-edges, then ε-elimination. *)
  let compile r0 =
    let next = ref 0 in
    let fresh () =
      let i = !next in
      incr next;
      i
    in
    let eps_edges = ref [] and sym_edges = ref [] in
    let add_eps s d = eps_edges := (s, d) :: !eps_edges in
    let add_sym s a d = sym_edges := (s, a, d) :: !sym_edges in
    (* returns (entry, exit) *)
    let rec build = function
      | Empty ->
          let s = fresh () and f = fresh () in
          (s, f)
      | Eps ->
          let s = fresh () in
          (s, s)
      | Sym a ->
          let s = fresh () and f = fresh () in
          add_sym s a f;
          (s, f)
      | Alt (r1, r2) ->
          let s = fresh () and f = fresh () in
          let s1, f1 = build r1 and s2, f2 = build r2 in
          add_eps s s1;
          add_eps s s2;
          add_eps f1 f;
          add_eps f2 f;
          (s, f)
      | Cat (r1, r2) ->
          let s1, f1 = build r1 and s2, f2 = build r2 in
          add_eps f1 s2;
          (s1, f2)
      | Star r ->
          let s = fresh () in
          let s1, f1 = build r in
          add_eps s s1;
          add_eps f1 s;
          (s, s)
    in
    let start, finish = build r0 in
    let n = !next in
    (* ε-closures *)
    let succs = Array.make (max n 1) [] in
    List.iter (fun (s, d) -> succs.(s) <- d :: succs.(s)) !eps_edges;
    let closure s =
      let seen = Array.make (max n 1) false in
      let rec go s acc =
        if seen.(s) then acc
        else begin
          seen.(s) <- true;
          List.fold_left (fun acc d -> go d acc) (s :: acc) succs.(s)
        end
      in
      go s []
    in
    let closures = Array.init (max n 1) closure in
    let trans =
      List.concat_map
        (fun p ->
          List.concat_map
            (fun (r, a, s) ->
              if List.mem r closures.(p) then [ (p, a, s) ] else [])
            !sym_edges)
        (List.init n Fun.id)
    in
    let finals =
      List.filter (fun p -> List.mem finish closures.(p)) (List.init n Fun.id)
    in
    N.create ~init:[ start ] ~finals ~trans

  let rec pp ppf = function
    | Empty -> Fmt.string ppf "0"
    | Eps -> Fmt.string ppf "1"
    | Sym a -> A.pp ppf a
    | Alt (a, b) -> Fmt.pf ppf "(%a|%a)" pp a pp b
    | Cat (a, b) -> Fmt.pf ppf "%a%a" pp_atom a pp_atom b
    | Star r -> Fmt.pf ppf "%a*" pp_atom r

  and pp_atom ppf r =
    match r with
    | Alt _ | Cat _ -> Fmt.pf ppf "(%a)" pp r
    | Empty | Eps | Sym _ | Star _ -> pp ppf r
end

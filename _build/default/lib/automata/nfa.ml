module type ALPHABET = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (A : ALPHABET) = struct
  type symbol = A.t
  type state = int

  module States = Set.Make (Int)
  module SMap = Map.Make (Int)
  module AMap = Map.Make (A)
  module ASet = Set.Make (A)

  type t = {
    states : States.t;
    init : States.t;
    finals : States.t;
    delta : States.t AMap.t SMap.t;
  }

  let empty =
    {
      states = States.empty;
      init = States.empty;
      finals = States.empty;
      delta = SMap.empty;
    }

  let add_trans delta (src, sym, dst) =
    let row = Option.value (SMap.find_opt src delta) ~default:AMap.empty in
    let tgt = Option.value (AMap.find_opt sym row) ~default:States.empty in
    SMap.add src (AMap.add sym (States.add dst tgt) row) delta

  let create ~init ~finals ~trans =
    let states =
      List.fold_left
        (fun acc (s, _, d) -> States.add s (States.add d acc))
        (States.of_list (init @ finals))
        trans
    in
    {
      states;
      init = States.of_list init;
      finals = States.of_list finals;
      delta = List.fold_left add_trans SMap.empty trans;
    }

  let states a = a.states
  let initials a = a.init
  let finals a = a.finals
  let size a = States.cardinal a.states

  let transitions a =
    SMap.fold
      (fun src row acc ->
        AMap.fold
          (fun sym tgts acc ->
            States.fold (fun dst acc -> (src, sym, dst) :: acc) tgts acc)
          row acc)
      a.delta []
    |> List.rev

  let alphabet a =
    SMap.fold
      (fun _ row acc -> AMap.fold (fun sym _ acc -> ASet.add sym acc) row acc)
      a.delta ASet.empty
    |> ASet.elements

  let step a set sym =
    States.fold
      (fun s acc ->
        match SMap.find_opt s a.delta with
        | None -> acc
        | Some row -> (
            match AMap.find_opt sym row with
            | None -> acc
            | Some tgts -> States.union tgts acc))
      set States.empty

  let run a word = List.fold_left (step a) a.init word
  let accepts a word = not (States.disjoint (run a word) a.finals)

  let successors a s =
    match SMap.find_opt s a.delta with
    | None -> []
    | Some row ->
        AMap.fold
          (fun sym tgts acc ->
            States.fold (fun d acc -> (sym, d) :: acc) tgts acc)
          row []

  let reachable a =
    let rec loop seen = function
      | [] -> seen
      | s :: rest ->
          let fresh =
            successors a s
            |> List.filter_map (fun (_, d) ->
                   if States.mem d seen then None else Some d)
          in
          let seen = List.fold_left (fun acc d -> States.add d acc) seen fresh in
          loop seen (fresh @ rest)
    in
    loop a.init (States.elements a.init)

  let is_language_empty a = States.disjoint (reachable a) a.finals

  let shortest_accepted a =
    (* Breadth-first search from the initial states; the first final state
       dequeued yields a shortest witness. *)
    let parent = Hashtbl.create 97 in
    let q = Queue.create () in
    States.iter
      (fun s ->
        Hashtbl.replace parent s None;
        Queue.add s q)
      a.init;
    let rec word_of s acc =
      match Hashtbl.find parent s with
      | None -> acc
      | Some (sym, pred) -> word_of pred (sym :: acc)
    in
    let rec bfs () =
      if Queue.is_empty q then None
      else
        let s = Queue.pop q in
        if States.mem s a.finals then Some (word_of s [])
        else begin
          List.iter
            (fun (sym, d) ->
              if not (Hashtbl.mem parent d) then begin
                Hashtbl.replace parent d (Some (sym, s));
                Queue.add d q
              end)
            (successors a s);
          bfs ()
        end
    in
    bfs ()

  let trim a =
    let keep = reachable a in
    {
      states = States.inter a.states keep;
      init = States.inter a.init keep;
      finals = States.inter a.finals keep;
      delta =
        SMap.filter_map
          (fun src row ->
            if not (States.mem src keep) then None
            else
              let row =
                AMap.filter_map
                  (fun _ tgts ->
                    let tgts = States.inter tgts keep in
                    if States.is_empty tgts then None else Some tgts)
                  row
              in
              if AMap.is_empty row then None else Some row)
          a.delta;
    }

  (* Pair states of a product automaton are encoded through a table built
     on the fly, so products of products stay cheap. *)
  let product ~final a b =
    let code = Hashtbl.create 97 in
    let next = ref 0 in
    let id p =
      match Hashtbl.find_opt code p with
      | Some i -> i
      | None ->
          let i = !next in
          incr next;
          Hashtbl.replace code p i;
          i
    in
    let init =
      States.fold
        (fun sa acc ->
          States.fold (fun sb acc -> id (sa, sb) :: acc) b.init acc)
        a.init []
    in
    let trans = ref [] in
    let finals = ref [] in
    let seen = Hashtbl.create 97 in
    let rec explore ((sa, sb) as p) =
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.replace seen p ();
        if final ~left_final:(States.mem sa a.finals)
             ~right_final:(States.mem sb b.finals)
        then finals := id p :: !finals;
        let row_a =
          Option.value (SMap.find_opt sa a.delta) ~default:AMap.empty
        in
        AMap.iter
          (fun sym tgts_a ->
            match SMap.find_opt sb b.delta with
            | None -> ()
            | Some row_b -> (
                match AMap.find_opt sym row_b with
                | None -> ()
                | Some tgts_b ->
                    States.iter
                      (fun da ->
                        States.iter
                          (fun db ->
                            trans := (id p, sym, id (da, db)) :: !trans;
                            explore (da, db))
                          tgts_b)
                      tgts_a))
          row_a
      end
    in
    States.iter
      (fun sa -> States.iter (fun sb -> explore (sa, sb)) b.init)
      a.init;
    create ~init ~finals:!finals ~trans:!trans

  let intersect a b =
    product ~final:(fun ~left_final ~right_final -> left_final && right_final)
      a b

  let union a b =
    (* Disjoint renaming of [b], then juxtaposition. *)
    let off = match States.max_elt_opt a.states with None -> 0 | Some m -> m + 1 in
    let shift s = s + off in
    let trans_b =
      transitions b |> List.map (fun (s, x, d) -> (shift s, x, shift d))
    in
    create
      ~init:(States.elements a.init @ List.map shift (States.elements b.init))
      ~finals:
        (States.elements a.finals @ List.map shift (States.elements b.finals))
      ~trans:(transitions a @ trans_b)

  (* Concatenation and star need ε-glue; since the representation has no
     ε-transitions, we splice: every transition into a final state of [a]
     also enters the initial states of [b] (plus initial overlap when [a]
     accepts ε). *)
  let concat a b =
    let off = match States.max_elt_opt a.states with None -> 0 | Some m -> m + 1 in
    let shift s = s + off in
    let b_init = List.map shift (States.elements b.init) in
    let b_trans =
      transitions b |> List.map (fun (s, x, d) -> (shift s, x, shift d))
    in
    let glue =
      transitions a
      |> List.concat_map (fun (s, x, d) ->
             if States.mem d a.finals then
               List.map (fun bi -> (s, x, bi)) b_init
             else [])
    in
    let init =
      States.elements a.init
      @ if States.disjoint a.init a.finals then [] else b_init
    in
    let finals = List.map shift (States.elements b.finals) in
    let finals =
      (* if b accepts ε, a's finals are accepting too *)
      if States.disjoint b.init b.finals then finals
      else finals @ States.elements a.finals
    in
    create ~init ~finals ~trans:(transitions a @ b_trans @ glue)

  let star a =
    (* a fresh state [q0], both initial and accepting, acting as the loop
       point: entries from the old initial states leave from [q0], and
       transitions into old finals may also land on [q0]. *)
    let q0 = (match States.max_elt_opt a.states with None -> 0 | Some m -> m + 1) in
    let t = transitions a in
    let extra =
      List.concat_map
        (fun (s, x, d) ->
          let from_init = States.mem s a.init in
          let to_final = States.mem d a.finals in
          (if from_init then [ (q0, x, d) ] else [])
          @ (if to_final then [ (s, x, q0) ] else [])
          @ if from_init && to_final then [ (q0, x, q0) ] else [])
        t
    in
    create ~init:[ q0 ] ~finals:[ q0 ] ~trans:(t @ extra)

  let reverse a =
    create
      ~init:(States.elements a.finals)
      ~finals:(States.elements a.init)
      ~trans:(transitions a |> List.map (fun (s, x, d) -> (d, x, s)))

  let enumerate ?(max_length = 6) ?(limit = 100) a =
    let sigma = alphabet a in
    (* frontier entries carry the word reversed; [rev_acc] collects the
       results newest-first *)
    let rec bfs rev_acc count frontier len =
      if len > max_length || count >= limit then List.rev rev_acc
      else
        let rev_acc, count =
          List.fold_left
            (fun (acc, c) (word, set) ->
              if c < limit && not (States.disjoint set a.finals) then
                (List.rev word :: acc, c + 1)
              else (acc, c))
            (rev_acc, count) frontier
        in
        let next =
          List.concat_map
            (fun (word, set) ->
              List.filter_map
                (fun x ->
                  let set' = step a set x in
                  if States.is_empty set' then None
                  else Some (x :: word, set'))
                sigma)
            frontier
        in
        if next = [] then List.rev rev_acc else bfs rev_acc count next (len + 1)
    in
    bfs [] 0 [ ([], a.init) ] 0

  let determinize a =
    let sigma = alphabet a in
    let code = Hashtbl.create 97 in
    let next = ref 0 in
    let id set =
      let key = States.elements set in
      match Hashtbl.find_opt code key with
      | Some i -> i
      | None ->
          let i = !next in
          incr next;
          Hashtbl.replace code key i;
          i
    in
    let trans = ref [] in
    let finals = ref [] in
    let seen = Hashtbl.create 97 in
    let rec explore set =
      let i = id set in
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.replace seen i ();
        if not (States.disjoint set a.finals) then finals := i :: !finals;
        List.iter
          (fun sym ->
            let tgt = step a set sym in
            trans := (i, sym, id tgt) :: !trans;
            explore tgt)
          sigma
      end
    in
    explore a.init;
    create ~init:[ id a.init ] ~finals:!finals ~trans:!trans

  let complete ~alphabet:sigma a =
    (* Add a non-final sink so every state has an outgoing transition for
       every symbol of [sigma]. *)
    let sink = (match States.max_elt_opt a.states with None -> 0 | Some m -> m + 1) in
    let missing =
      States.fold
        (fun s acc ->
          let row = Option.value (SMap.find_opt s a.delta) ~default:AMap.empty in
          List.fold_left
            (fun acc sym ->
              if AMap.mem sym row then acc else (s, sym, sink) :: acc)
            acc sigma)
        (States.add sink a.states) []
    in
    if missing = [] then a
    else
      create
        ~init:(States.elements a.init)
        ~finals:(States.elements a.finals)
        ~trans:(transitions a @ missing)

  let complement ~alphabet:sigma a =
    let d = determinize a in
    let d = complete ~alphabet:sigma d in
    { d with finals = States.diff d.states d.finals }

  let minimize a =
    let d = trim (determinize a) in
    if States.is_empty d.states then d
    else begin
      let sigma = alphabet d in
      let states = States.elements d.states in
      (* Moore refinement: blocks are numbered; a state's signature is its
         block together with the blocks reached on each symbol. *)
      let block = Hashtbl.create 97 in
      List.iter
        (fun s ->
          Hashtbl.replace block s (if States.mem s d.finals then 1 else 0))
        states;
      let next_of s sym =
        let tgt = step d (States.singleton s) sym in
        match States.choose_opt tgt with
        | None -> -1
        | Some t -> Hashtbl.find block t
      in
      let changed = ref true in
      while !changed do
        changed := false;
        let sig_tbl = Hashtbl.create 97 in
        let fresh = ref 0 in
        let new_block = Hashtbl.create 97 in
        List.iter
          (fun s ->
            let signature =
              (Hashtbl.find block s, List.map (next_of s) sigma)
            in
            let b =
              match Hashtbl.find_opt sig_tbl signature with
              | Some b -> b
              | None ->
                  let b = !fresh in
                  incr fresh;
                  Hashtbl.replace sig_tbl signature b;
                  b
            in
            Hashtbl.replace new_block s b)
          states;
        let differs =
          List.exists
            (fun s -> Hashtbl.find block s <> Hashtbl.find new_block s)
            states
        in
        if differs then begin
          List.iter
            (fun s -> Hashtbl.replace block s (Hashtbl.find new_block s))
            states;
          changed := true
        end
      done;
      let b s = Hashtbl.find block s in
      let trans =
        transitions d |> List.map (fun (s, x, t) -> (b s, x, b t))
        |> List.sort_uniq compare
      in
      create
        ~init:(States.elements d.init |> List.map b |> List.sort_uniq compare)
        ~finals:
          (States.elements d.finals |> List.map b |> List.sort_uniq compare)
        ~trans
    end

  let equivalent ~alphabet:sigma a b =
    let ca = complement ~alphabet:sigma a in
    let cb = complement ~alphabet:sigma b in
    is_language_empty (intersect a cb) && is_language_empty (intersect b ca)

  let pp ppf a =
    Fmt.pf ppf "@[<v>states: %d, init: {%a}, finals: {%a}@,%a@]"
      (size a)
      Fmt.(list ~sep:comma int)
      (States.elements a.init)
      Fmt.(list ~sep:comma int)
      (States.elements a.finals)
      Fmt.(
        list ~sep:cut (fun ppf (s, x, d) -> pf ppf "%d -%a-> %d" s A.pp x d))
      (transitions a)

  let pp_dot ?(name = "nfa") () ppf a =
    Fmt.pf ppf "digraph %s {@." name;
    Fmt.pf ppf "  rankdir=LR;@.";
    States.iter
      (fun s ->
        let shape = if States.mem s a.finals then "doublecircle" else "circle" in
        Fmt.pf ppf "  %d [shape=%s];@." s shape)
      a.states;
    States.iter (fun s -> Fmt.pf ppf "  init%d [shape=point]; init%d -> %d;@." s s s) a.init;
    List.iter
      (fun (s, x, d) -> Fmt.pf ppf "  %d -> %d [label=\"%a\"];@." s d A.pp x)
      (transitions a);
    Fmt.pf ppf "}@."
end

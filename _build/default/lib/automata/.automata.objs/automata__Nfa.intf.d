lib/automata/nfa.mli: Fmt Set

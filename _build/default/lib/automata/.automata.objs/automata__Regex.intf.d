lib/automata/regex.mli: Fmt Nfa

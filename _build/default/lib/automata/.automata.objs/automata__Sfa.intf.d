lib/automata/sfa.mli: Fmt Set

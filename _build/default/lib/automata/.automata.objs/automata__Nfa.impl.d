lib/automata/nfa.ml: Fmt Hashtbl Int List Map Option Queue Set

lib/automata/regex.ml: Array Fmt Fun List Nfa

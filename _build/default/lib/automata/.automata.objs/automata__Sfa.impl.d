lib/automata/sfa.ml: Fmt Hashtbl Int List Option Set

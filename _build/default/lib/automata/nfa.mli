(** Nondeterministic finite automata over a finite, ordered alphabet.

    This is the workhorse behind the static machinery of the library:
    instantiated usage policies become concrete NFAs, history expressions
    are rendered as NFAs over ground actions, and validity checking is a
    reachability question on their product.

    States are plain integers; an automaton only ever mentions states
    that appear in its transition relation, its initial set or its final
    set. All operations are purely functional. *)

module type ALPHABET = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (A : ALPHABET) : sig
  type symbol = A.t
  type state = int

  module States : Set.S with type elt = state

  type t

  (** {1 Construction} *)

  val create :
    init:state list ->
    finals:state list ->
    trans:(state * symbol * state) list ->
    t
  (** [create ~init ~finals ~trans] builds an NFA. The state space is the
      union of all states mentioned. *)

  val empty : t
  (** The automaton with no states; accepts nothing. *)

  (** {1 Accessors} *)

  val states : t -> States.t
  val initials : t -> States.t
  val finals : t -> States.t
  val transitions : t -> (state * symbol * state) list
  val alphabet : t -> symbol list
  (** Symbols occurring on transitions, sorted, without duplicates. *)

  val size : t -> int
  (** Number of states. *)

  (** {1 Execution} *)

  val step : t -> States.t -> symbol -> States.t
  val run : t -> symbol list -> States.t
  (** States reachable from the initial set by reading the whole word. *)

  val accepts : t -> symbol list -> bool

  (** {1 Analysis} *)

  val reachable : t -> States.t
  val is_language_empty : t -> bool
  (** [true] iff no final state is reachable from an initial state. *)

  val shortest_accepted : t -> symbol list option
  (** A shortest accepted word, if the language is non-empty. *)

  val trim : t -> t
  (** Restrict to states reachable from the initial set. *)

  (** {1 Boolean operations} *)

  val product :
    final:(left_final:bool -> right_final:bool -> bool) -> t -> t -> t
  (** Synchronous product. The [final] predicate decides finality of a
      pair state from the finality of its components, so the same
      function yields intersection ([&&]) or other combinations. *)

  val intersect : t -> t -> t
  val union : t -> t -> t

  val concat : t -> t -> t
  (** Language concatenation. *)

  val star : t -> t
  (** Kleene star. *)

  val reverse : t -> t
  (** The reversed language. *)

  val enumerate : ?max_length:int -> ?limit:int -> t -> symbol list list
  (** Accepted words in length-lexicographic order, up to [max_length]
      (default 6) and at most [limit] (default 100) words. *)

  val determinize : t -> t
  (** Subset construction; the result is a complete DFA over
      [alphabet t] plus a sink state. *)

  val complement : alphabet:symbol list -> t -> t
  (** Complement w.r.t. the given alphabet (the automaton is completed
      and determinized first). *)

  val minimize : t -> t
  (** Moore partition refinement on the determinized automaton. *)

  val equivalent : alphabet:symbol list -> t -> t -> bool
  (** Language equivalence over the given alphabet. *)

  (** {1 Printing} *)

  val pp : t Fmt.t
  val pp_dot : ?name:string -> unit -> t Fmt.t
end

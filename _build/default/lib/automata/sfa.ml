module type LABEL = sig
  type t
  type letter

  val sat : t -> letter -> bool
  val pp : t Fmt.t
  val pp_letter : letter Fmt.t
end

module Make (L : LABEL) = struct
  type state = int

  module States = Set.Make (Int)

  type t = {
    init : state;
    finals : States.t;
    trans : (state * L.t * state) list;
    by_src : (state, (L.t * state) list) Hashtbl.t;
  }

  let create ~init ~finals ~trans =
    let by_src = Hashtbl.create 17 in
    List.iter
      (fun (s, g, d) ->
        let row = Option.value (Hashtbl.find_opt by_src s) ~default:[] in
        Hashtbl.replace by_src s ((g, d) :: row))
      (List.rev trans);
    { init; finals = States.of_list finals; trans; by_src }

  let initial a = a.init
  let finals a = a.finals
  let transitions a = a.trans

  let step_state a s letter =
    let out = Option.value (Hashtbl.find_opt a.by_src s) ~default:[] in
    let matches =
      List.filter_map (fun (g, d) -> if L.sat g letter then Some d else None) out
    in
    match matches with [] -> [ s ] | ds -> ds

  let step a set letter =
    States.fold
      (fun s acc ->
        List.fold_left (fun acc d -> States.add d acc) acc (step_state a s letter))
      set States.empty

  let run a word = List.fold_left (step a) (States.singleton a.init) word
  let violates a word = not (States.disjoint (run a word) a.finals)

  let first_violation a word =
    let rec loop i set = function
      | [] -> None
      | x :: rest ->
          let set = step a set x in
          if States.disjoint set a.finals then loop (i + 1) set rest else Some i
    in
    if States.mem a.init a.finals then Some (-1)
    else loop 0 (States.singleton a.init) word

  let concrete_transitions a letters =
    let states =
      List.fold_left
        (fun acc (s, _, d) -> States.add s (States.add d acc))
        (States.add a.init a.finals)
        a.trans
    in
    States.fold
      (fun s acc ->
        List.fold_left
          (fun acc letter ->
            List.fold_left
              (fun acc d -> (s, letter, d) :: acc)
              acc (step_state a s letter))
          acc letters)
      states []

  let pp ppf a =
    Fmt.pf ppf "@[<v>init: %d, offending: {%a}@,%a@]" a.init
      Fmt.(list ~sep:comma int)
      (States.elements a.finals)
      Fmt.(
        list ~sep:cut (fun ppf (s, g, d) -> pf ppf "%d -[%a]-> %d" s L.pp g d))
      a.trans
end

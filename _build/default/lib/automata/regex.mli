(** Regular expressions over an arbitrary finite alphabet, with two
    independent semantics used to check each other:

    - {!Make.compile}: Thompson construction to an {!Nfa.Make} automaton
      (ε-transitions eliminated on the fly);
    - {!Make.matches}: Brzozowski derivatives, no automaton at all.

    The test suite property-checks their agreement; policies defined by
    forbidden-trace expressions build on the compiled form. *)

module Make (A : Nfa.ALPHABET) : sig
  type t =
    | Empty  (** ∅ — matches nothing *)
    | Eps  (** ε — the empty word *)
    | Sym of A.t
    | Alt of t * t
    | Cat of t * t
    | Star of t

  (** {1 Smart constructors} (perform the obvious simplifications) *)

  val empty : t
  val eps : t
  val sym : A.t -> t
  val alt : t -> t -> t
  val cat : t -> t -> t
  val star : t -> t
  val of_word : A.t list -> t
  val any_of : A.t list -> t
  (** Alternation of symbols. *)

  val opt : t -> t
  val plus : t -> t

  (** {1 Semantics} *)

  val nullable : t -> bool
  (** Does the expression match ε? *)

  val deriv : A.t -> t -> t
  (** Brzozowski derivative. *)

  val matches : t -> A.t list -> bool
  (** Derivative-based matching. *)

  module N : module type of Nfa.Make (A)

  val compile : t -> N.t
  (** Thompson construction; the result has no ε-transitions and accepts
      exactly the expression's language. *)

  val pp : t Fmt.t
end

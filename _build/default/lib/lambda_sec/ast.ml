type ty =
  | TUnit
  | TBool
  | TInt
  | TStr
  | TFun of ty * Core.Hexpr.t * ty
  | TPair of ty * ty

type binop = Add | Sub | Mul | Lt | Leq

type term =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Var of string
  | Fun of {
      self : string option;
      param : string;
      param_ty : ty;
      ret_ty : ty option;
      body : term;
    }
  | App of term * term
  | Let of string * term * term
  | If of term * term * term
  | Eq of term * term
  | Binop of binop * term * term
  | Pair of term * term
  | Fst of term
  | Snd of term
  | Event of Usage.Event.t
  | Framed of Usage.Policy.t * term
  | Send of string
  | Recv of (string * term) list
  | Select of (string * term) list
  | Request of { rid : int; policy : Usage.Policy.t option; body : term }

let rec ty_equal a b =
  match (a, b) with
  | TUnit, TUnit | TBool, TBool | TInt, TInt | TStr, TStr -> true
  | TFun (a1, h1, r1), TFun (a2, h2, r2) ->
      ty_equal a1 a2 && Core.Hexpr.equal h1 h2 && ty_equal r1 r2
  | TPair (a1, b1), TPair (a2, b2) -> ty_equal a1 a2 && ty_equal b1 b2
  | (TUnit | TBool | TInt | TStr | TFun _ | TPair _), _ -> false

let rec pp_ty ppf = function
  | TUnit -> Fmt.string ppf "unit"
  | TBool -> Fmt.string ppf "bool"
  | TInt -> Fmt.string ppf "int"
  | TStr -> Fmt.string ppf "str"
  | TFun (a, h, r) ->
      Fmt.pf ppf "(%a -[%a]-> %a)" pp_ty a Core.Hexpr.pp h pp_ty r
  | TPair (a, b) -> Fmt.pf ppf "(%a * %a)" pp_ty a pp_ty b

let pp_binop ppf op =
  Fmt.string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Lt -> "<" | Leq -> "<=")

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "%S" s
  | Var x -> Fmt.string ppf x
  | Fun { self; param; param_ty; body; _ } ->
      let pp_self ppf = function
        | None -> ()
        | Some f -> Fmt.pf ppf "%s " f
      in
      Fmt.pf ppf "(fun %a%s:%a -> %a)" pp_self self param pp_ty param_ty pp
        body
  | App (a, b) -> Fmt.pf ppf "(%a %a)" pp a pp b
  | Let (x, a, b) -> Fmt.pf ppf "let %s = %a in@ %a" x pp a pp b
  | If (c, a, b) -> Fmt.pf ppf "if %a then %a else %a" pp c pp a pp b
  | Eq (a, b) -> Fmt.pf ppf "(%a = %a)" pp a pp b
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_binop op pp b
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | Fst a -> Fmt.pf ppf "fst %a" pp a
  | Snd a -> Fmt.pf ppf "snd %a" pp a
  | Event e -> Fmt.pf ppf "ev %a" Usage.Event.pp e
  | Framed (p, e) -> Fmt.pf ppf "%s[%a]" (Usage.Policy.id p) pp e
  | Send a -> Fmt.pf ppf "send %s" a
  | Recv bs ->
      Fmt.pf ppf "recv {%a}"
        Fmt.(
          list ~sep:(any " | ") (fun ppf (a, e) -> pf ppf "%s -> %a" a pp e))
        bs
  | Select bs ->
      Fmt.pf ppf "select {%a}"
        Fmt.(
          list ~sep:(any " | ") (fun ppf (a, e) -> pf ppf "%s -> %a" a pp e))
        bs
  | Request { rid; policy; body } ->
      let pp_pol ppf = function
        | None -> ()
        | Some p -> Fmt.pf ppf ":%s" (Usage.Policy.id p)
      in
      Fmt.pf ppf "req_%d%a{%a}" rid pp_pol policy pp body

let lam param param_ty body =
  Fun { self = None; param; param_ty; ret_ty = None; body }

let fix self param param_ty ret_ty body =
  Fun { self = Some self; param; param_ty; ret_ty = Some ret_ty; body }

let ( @@@ ) f x = App (f, x)
let seq a b = Let ("_", a, b)
let ev ?arg name = Event (Usage.Event.make ?arg name)

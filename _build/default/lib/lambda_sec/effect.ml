module H = Core.Hexpr

let rec push_seq (h : H.t) : H.t =
  match h with
  | H.Seq (H.Ext bs, k) ->
      H.branch (List.map (fun (a, c) -> (a, push_seq (H.seq c k))) bs)
  | H.Seq (H.Int bs, k) ->
      H.select (List.map (fun (a, c) -> (a, push_seq (H.seq c k))) bs)
  | _ -> h

let join h1 h2 =
  let h1 = push_seq h1 and h2 = push_seq h2 in
  match (h1, h2) with
  | H.Int bs1, H.Int bs2
    when List.for_all (fun (a, _) -> not (List.mem_assoc a bs2)) bs1 ->
      H.select (bs1 @ bs2)
  | _ -> H.choice h1 h2

let item_of_action (a : Core.Action.t) : Core.History.item option =
  match a with
  | Core.Action.Evt e -> Some (Core.History.Ev e)
  | Core.Action.Frm_open p -> Some (Core.History.Op p)
  | Core.Action.Frm_close p -> Some (Core.History.Cl p)
  | Core.Action.Op { policy = Some p; _ } -> Some (Core.History.Op p)
  | Core.Action.Cl { policy = Some p; _ } -> Some (Core.History.Cl p)
  | Core.Action.Op { policy = None; _ }
  | Core.Action.Cl { policy = None; _ }
  | Core.Action.In _ | Core.Action.Out _ | Core.Action.Tau ->
      None

let item_equal a b =
  match ((a : Core.History.item), (b : Core.History.item)) with
  | Core.History.Ev e, Core.History.Ev f -> Usage.Event.equal e f
  | Core.History.Op p, Core.History.Op q
  | Core.History.Cl p, Core.History.Cl q ->
      Usage.Policy.equal p q
  | (Core.History.Ev _ | Core.History.Op _ | Core.History.Cl _), _ -> false

module HSet = Set.Make (struct
  type t = H.t * int

  let compare (h1, i1) (h2, i2) =
    match Int.compare i1 i2 with 0 -> H.compare h1 h2 | c -> c
end)

(* BFS over (expression state, items consumed); communications are
   ε-moves. The items list is indexed by position so visited states can
   be deduplicated. *)
let admits h0 items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let rec go seen = function
    | [] -> false
    | (h, i) :: rest ->
        i = n
        ||
        let succs =
          Core.Semantics.transitions h
          |> List.filter_map (fun (act, h') ->
                 match item_of_action act with
                 | None -> Some (h', i)
                 | Some item ->
                     if i < n && item_equal item arr.(i) then Some (h', i + 1)
                     else None)
          |> List.filter (fun st -> not (HSet.mem st seen))
          |> List.sort_uniq (fun (h1, i1) (h2, i2) ->
                 match Int.compare i1 i2 with
                 | 0 -> H.compare h1 h2
                 | c -> c)
        in
        let seen = List.fold_left (fun s st -> HSet.add st s) seen succs in
        go seen (rest @ succs)
  in
  n = 0 || go (HSet.singleton (h0, 0)) [ (h0, 0) ]

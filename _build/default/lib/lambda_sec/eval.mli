(** A big-step, history-logging evaluator for the service λ-calculus,
    with the run-time security monitor the paper's static analysis makes
    redundant.

    Communication is resolved by a {!strategy} (the evaluator runs one
    service in isolation, so the environment's moves are oracles); the
    logged history contains the events and framings, exactly what the
    network semantics would log. *)

type value =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VClos of env * Ast.term
  | VPair of value * value

and env = (string * value) list

type strategy = {
  pick_select : string list -> string;  (** which branch we decide to send *)
  pick_recv : string list -> string;  (** which message the partner sends *)
}

val first_strategy : strategy
val scripted : string list -> strategy
(** Consumes the given channel names in order (for both kinds of
    choices); falls back to the first branch when exhausted. *)

type error =
  | Security of Core.Validity.violation
      (** the monitor aborted the execution *)
  | Stuck of string

val eval :
  ?monitor:bool ->
  ?strategy:strategy ->
  Ast.term ->
  (value * Core.History.t, error) result
(** [monitor] (default [true]) enforces framings at run time; with
    [monitor:false] the history is logged but never checked — safe
    exactly when the static analysis validated the service. *)

val pp_value : value Fmt.t
val pp_error : error Fmt.t

type error =
  | Unbound of string
  | Mismatch of { expected : Ast.ty; got : Ast.ty; context : string }
  | Not_a_function of Ast.ty
  | Branches_differ of string
  | Needs_annotation of string
  | Base_type_expected of Ast.ty

let pp_error ppf = function
  | Unbound x -> Fmt.pf ppf "unbound variable %s" x
  | Mismatch { expected; got; context } ->
      Fmt.pf ppf "type mismatch in %s: expected %a, got %a" context Ast.pp_ty
        expected Ast.pp_ty got
  | Not_a_function ty -> Fmt.pf ppf "%a is not a function type" Ast.pp_ty ty
  | Branches_differ where -> Fmt.pf ppf "branches of %s differ in type" where
  | Needs_annotation f ->
      Fmt.pf ppf "recursive function %s needs a return-type annotation" f
  | Base_type_expected ty ->
      Fmt.pf ppf "equality needs base types, got %a" Ast.pp_ty ty

let ( let* ) = Result.bind

let is_base = function
  | Ast.TUnit | Ast.TBool | Ast.TInt | Ast.TStr -> true
  | Ast.TFun _ | Ast.TPair _ -> false

let effect_var self = "h_" ^ self

let rec infer env (e : Ast.term) =
  match e with
  | Ast.Unit -> Ok (Ast.TUnit, Core.Hexpr.nil)
  | Ast.Bool _ -> Ok (Ast.TBool, Core.Hexpr.nil)
  | Ast.Int _ -> Ok (Ast.TInt, Core.Hexpr.nil)
  | Ast.Str _ -> Ok (Ast.TStr, Core.Hexpr.nil)
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some ty -> Ok (ty, Core.Hexpr.nil)
      | None -> Error (Unbound x))
  | Ast.Fun { self = None; param; param_ty; ret_ty; body } ->
      let* body_ty, latent = infer ((param, param_ty) :: env) body in
      let* () =
        match ret_ty with
        | Some r when not (Ast.ty_equal r body_ty) ->
            Error (Mismatch { expected = r; got = body_ty; context = "fun body" })
        | _ -> Ok ()
      in
      Ok (Ast.TFun (param_ty, latent, body_ty), Core.Hexpr.nil)
  | Ast.Fun { self = Some f; param; param_ty; ret_ty; body } ->
      let* ret =
        match ret_ty with Some r -> Ok r | None -> Error (Needs_annotation f)
      in
      let h = effect_var f in
      let self_ty = Ast.TFun (param_ty, Core.Hexpr.var h, ret) in
      let env = (f, self_ty) :: (param, param_ty) :: env in
      let* body_ty, body_eff = infer env body in
      if not (Ast.ty_equal body_ty ret) then
        Error (Mismatch { expected = ret; got = body_ty; context = "fix body" })
      else
        let latent = Core.Hexpr.mu h body_eff in
        Ok (Ast.TFun (param_ty, latent, ret), Core.Hexpr.nil)
  | Ast.App (e1, e2) -> (
      let* ty1, eff1 = infer env e1 in
      let* ty2, eff2 = infer env e2 in
      match ty1 with
      | Ast.TFun (arg, latent, res) ->
          if Ast.ty_equal arg ty2 then
            Ok (res, Core.Hexpr.seq eff1 (Core.Hexpr.seq eff2 latent))
          else
            Error (Mismatch { expected = arg; got = ty2; context = "application" })
      | _ -> Error (Not_a_function ty1))
  | Ast.Let (x, e1, e2) ->
      let* ty1, eff1 = infer env e1 in
      let* ty2, eff2 = infer ((x, ty1) :: env) e2 in
      Ok (ty2, Core.Hexpr.seq eff1 eff2)
  | Ast.If (c, e1, e2) ->
      let* tyc, effc = infer env c in
      if not (Ast.ty_equal tyc Ast.TBool) then
        Error (Mismatch { expected = Ast.TBool; got = tyc; context = "if" })
      else
        let* ty1, eff1 = infer env e1 in
        let* ty2, eff2 = infer env e2 in
        if Ast.ty_equal ty1 ty2 then
          Ok (ty1, Core.Hexpr.seq effc (Effect.join eff1 eff2))
        else Error (Branches_differ "if")
  | Ast.Eq (e1, e2) ->
      let* ty1, eff1 = infer env e1 in
      let* ty2, eff2 = infer env e2 in
      if not (is_base ty1) then Error (Base_type_expected ty1)
      else if Ast.ty_equal ty1 ty2 then
        Ok (Ast.TBool, Core.Hexpr.seq eff1 eff2)
      else Error (Mismatch { expected = ty1; got = ty2; context = "equality" })
  | Ast.Binop (op, e1, e2) ->
      let* ty1, eff1 = infer env e1 in
      let* ty2, eff2 = infer env e2 in
      if not (Ast.ty_equal ty1 Ast.TInt) then
        Error (Mismatch { expected = Ast.TInt; got = ty1; context = "operator" })
      else if not (Ast.ty_equal ty2 Ast.TInt) then
        Error (Mismatch { expected = Ast.TInt; got = ty2; context = "operator" })
      else
        let res =
          match op with
          | Ast.Add | Ast.Sub | Ast.Mul -> Ast.TInt
          | Ast.Lt | Ast.Leq -> Ast.TBool
        in
        Ok (res, Core.Hexpr.seq eff1 eff2)
  | Ast.Pair (e1, e2) ->
      let* ty1, eff1 = infer env e1 in
      let* ty2, eff2 = infer env e2 in
      Ok (Ast.TPair (ty1, ty2), Core.Hexpr.seq eff1 eff2)
  | Ast.Fst e -> (
      let* ty, eff = infer env e in
      match ty with
      | Ast.TPair (a, _) -> Ok (a, eff)
      | _ ->
          Error
            (Mismatch
               { expected = Ast.TPair (Ast.TUnit, Ast.TUnit); got = ty; context = "fst" }))
  | Ast.Snd e -> (
      let* ty, eff = infer env e in
      match ty with
      | Ast.TPair (_, b) -> Ok (b, eff)
      | _ ->
          Error
            (Mismatch
               { expected = Ast.TPair (Ast.TUnit, Ast.TUnit); got = ty; context = "snd" }))
  | Ast.Event e -> Ok (Ast.TUnit, Core.Hexpr.event e)
  | Ast.Framed (p, e) ->
      let* ty, eff = infer env e in
      Ok (ty, Core.Hexpr.frame p eff)
  | Ast.Send a -> Ok (Ast.TUnit, Core.Hexpr.send a)
  | Ast.Recv branches -> infer_branches env "recv" Core.Hexpr.branch branches
  | Ast.Select branches -> infer_branches env "select" Core.Hexpr.select branches
  | Ast.Request { rid; policy; body } ->
      let* ty, eff = infer env body in
      Ok (ty, Core.Hexpr.open_ ~rid ?policy eff)

and infer_branches env what combine branches =
  let* inferred =
    List.fold_left
      (fun acc (a, e) ->
        let* acc = acc in
        let* ty, eff = infer env e in
        Ok ((a, ty, eff) :: acc))
      (Ok []) branches
  in
  let inferred = List.rev inferred in
  match inferred with
  | [] -> Error (Branches_differ what)
  | (_, ty0, _) :: _ ->
      if List.for_all (fun (_, ty, _) -> Ast.ty_equal ty ty0) inferred then
        Ok (ty0, combine (List.map (fun (a, _, eff) -> (a, eff)) inferred))
      else Error (Branches_differ what)

let infer_effect e = Result.map snd (infer [] e)

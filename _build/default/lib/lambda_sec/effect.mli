(** Helpers connecting inferred effects back to the paper's guarded
    fragment. *)

val push_seq : Core.Hexpr.t -> Core.Hexpr.t
(** Distribute a leading sequential composition into choice prefixes:
    [(Σ aᵢ.Hᵢ)·K ≡ Σ aᵢ.(Hᵢ·K)] (and likewise for [⊕]). Exposes the
    guard structure the {!join} of conditionals needs. Semantics
    preserving (same LTS). *)

val join : Core.Hexpr.t -> Core.Hexpr.t -> Core.Hexpr.t
(** The effect of a conditional: when both branches start with disjoint
    output guards, their join is the paper's internal choice [⊕] — a
    data-dependent decision abstracted as the service choosing; otherwise
    it falls back to the unguarded [Choice] extension. *)

val admits : Core.Hexpr.t -> Core.History.item list -> bool
(** Does the history expression admit the given logged history as (a
    prefix of) one of its traces? Communications are treated as silent.
    Used to state effect soundness: every history an evaluation logs is
    admitted by the inferred effect. *)

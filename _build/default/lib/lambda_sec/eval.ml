type value =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VClos of env * Ast.term
  | VPair of value * value

and env = (string * value) list

type strategy = {
  pick_select : string list -> string;
  pick_recv : string list -> string;
}

let first_strategy =
  let first = function [] -> invalid_arg "empty choice" | a :: _ -> a in
  { pick_select = first; pick_recv = first }

let scripted names =
  let remaining = ref names in
  let pick options =
    match !remaining with
    | n :: rest when List.mem n options ->
        remaining := rest;
        n
    | _ -> ( match options with [] -> invalid_arg "empty choice" | a :: _ -> a)
  in
  { pick_select = pick; pick_recv = pick }

type error = Security of Core.Validity.violation | Stuck of string

exception Abort of error

let rec value_equal a b =
  match (a, b) with
  | VUnit, VUnit -> true
  | VBool x, VBool y -> x = y
  | VInt x, VInt y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VPair (a1, b1), VPair (a2, b2) -> value_equal a1 a2 && value_equal b1 b2
  | (VUnit | VBool _ | VInt _ | VStr _ | VClos _ | VPair _), _ -> false

let eval ?(monitor = true) ?(strategy = first_strategy) term =
  let mon = ref Core.Validity.Monitor.empty in
  let log item =
    if monitor then
      match Core.Validity.Monitor.push !mon item with
      | Ok m -> mon := m
      | Error v -> raise (Abort (Security v))
    else mon := Core.Validity.Monitor.push_unchecked !mon item
  in
  let rec go env (e : Ast.term) : value =
    match e with
    | Ast.Unit -> VUnit
    | Ast.Bool b -> VBool b
    | Ast.Int n -> VInt n
    | Ast.Str s -> VStr s
    | Ast.Var x -> (
        match List.assoc_opt x env with
        | Some v -> v
        | None -> raise (Abort (Stuck ("unbound variable " ^ x))))
    | Ast.Fun _ -> VClos (env, e)
    | Ast.App (e1, e2) -> (
        let f = go env e1 in
        let arg = go env e2 in
        match f with
        | VClos (cenv, Ast.Fun { self; param; body; _ }) ->
            let cenv =
              match self with
              | None -> cenv
              | Some name -> (name, f) :: cenv
            in
            go ((param, arg) :: cenv) body
        | _ -> raise (Abort (Stuck "application of a non-function")))
    | Ast.Let (x, e1, e2) ->
        let v = go env e1 in
        go ((x, v) :: env) e2
    | Ast.If (c, e1, e2) -> (
        match go env c with
        | VBool true -> go env e1
        | VBool false -> go env e2
        | _ -> raise (Abort (Stuck "if on a non-boolean")))
    | Ast.Eq (e1, e2) ->
        let v1 = go env e1 in
        let v2 = go env e2 in
        VBool (value_equal v1 v2)
    | Ast.Binop (op, e1, e2) -> (
        let v1 = go env e1 in
        let v2 = go env e2 in
        match (v1, v2) with
        | VInt a, VInt b -> (
            match op with
            | Ast.Add -> VInt (a + b)
            | Ast.Sub -> VInt (a - b)
            | Ast.Mul -> VInt (a * b)
            | Ast.Lt -> VBool (a < b)
            | Ast.Leq -> VBool (a <= b))
        | _ -> raise (Abort (Stuck "arithmetic on non-integers")))
    | Ast.Pair (e1, e2) ->
        let v1 = go env e1 in
        let v2 = go env e2 in
        VPair (v1, v2)
    | Ast.Fst e -> (
        match go env e with
        | VPair (a, _) -> a
        | _ -> raise (Abort (Stuck "fst of a non-pair")))
    | Ast.Snd e -> (
        match go env e with
        | VPair (_, b) -> b
        | _ -> raise (Abort (Stuck "snd of a non-pair")))
    | Ast.Event ev ->
        log (Core.History.Ev ev);
        VUnit
    | Ast.Framed (p, e) ->
        log (Core.History.Op p);
        let v = go env e in
        log (Core.History.Cl p);
        v
    | Ast.Send _ -> VUnit
    | Ast.Recv branches ->
        let a = strategy.pick_recv (List.map fst branches) in
        go env (List.assoc a branches)
    | Ast.Select branches ->
        let a = strategy.pick_select (List.map fst branches) in
        go env (List.assoc a branches)
    | Ast.Request { policy; body; _ } -> (
        match policy with
        | None -> go env body
        | Some p ->
            log (Core.History.Op p);
            let v = go env body in
            log (Core.History.Cl p);
            v)
  in
  match go [] term with
  | v -> Ok (v, Core.Validity.Monitor.history !mon)
  | exception Abort e -> Error e

let rec pp_value ppf = function
  | VUnit -> Fmt.string ppf "()"
  | VBool b -> Fmt.bool ppf b
  | VInt n -> Fmt.int ppf n
  | VStr s -> Fmt.pf ppf "%S" s
  | VClos _ -> Fmt.string ppf "<closure>"
  | VPair (a, b) -> Fmt.pf ppf "(%a, %a)" pp_value a pp_value b

let pp_error ppf = function
  | Security v -> Fmt.pf ppf "security abort: %a" Core.Validity.pp_violation v
  | Stuck msg -> Fmt.pf ppf "stuck: %s" msg

(** The type-and-effect system: [Γ ⊢ e : τ ▷ H] — expression [e] has
    type [τ] and its execution produces histories abstracted by the
    history expression [H] (the reconstruction of [4,5] described in
    DESIGN.md). *)

type error =
  | Unbound of string
  | Mismatch of { expected : Ast.ty; got : Ast.ty; context : string }
  | Not_a_function of Ast.ty
  | Branches_differ of string
  | Needs_annotation of string
      (** a recursive function without a return-type annotation *)
  | Base_type_expected of Ast.ty

val pp_error : error Fmt.t

val infer :
  (string * Ast.ty) list -> Ast.term -> (Ast.ty * Core.Hexpr.t, error) result
(** Latent effects of recursive functions are tied with [μ]; the effect
    of a conditional is the {!Effect.join} of its branches. *)

val infer_effect : Ast.term -> (Core.Hexpr.t, error) result
(** [infer []] restricted to the effect, for closed services. *)

(** A call-by-value service λ-calculus in the style of [4,5]
    (call-by-contract): the concrete language whose abstract behaviour
    the paper's history expressions describe. The paper cites this layer
    without re-defining it (§3: “we address neither the analogous
    extensions to the λ-calculus, nor the definition of a type and
    effect system for it”); we reconstruct it so the pipeline
    program → effect → verification is runnable end to end.

    Security-relevant constructs: events [ev α], safety framings
    [φ[e]], service requests [req_r e]; communication constructs:
    [send], [recv], [select]. *)

type ty =
  | TUnit
  | TBool
  | TInt
  | TStr
  | TFun of ty * Core.Hexpr.t * ty
      (** [τ₁ --H--> τ₂]: the latent effect [H] fires at application *)
  | TPair of ty * ty

type binop = Add | Sub | Mul | Lt | Leq

type term =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Var of string
  | Fun of {
      self : string option;  (** [Some f] for recursive functions *)
      param : string;
      param_ty : ty;
      ret_ty : ty option;  (** mandatory when [self] is given *)
      body : term;
    }
  | App of term * term
  | Let of string * term * term
  | If of term * term * term
  | Eq of term * term  (** polymorphic equality on base values *)
  | Binop of binop * term * term  (** integer arithmetic and comparison *)
  | Pair of term * term
  | Fst of term
  | Snd of term
  | Event of Usage.Event.t  (** fire [α]; type [unit] *)
  | Framed of Usage.Policy.t * term  (** [φ[e]] *)
  | Send of string  (** [ā]; type [unit] *)
  | Recv of (string * term) list  (** external choice on channels *)
  | Select of (string * term) list
      (** internal choice: the service decides which branch to send *)
  | Request of { rid : int; policy : Usage.Policy.t option; body : term }
      (** [open_{r,φ} body close_{r,φ}]: a client-side session *)

val ty_equal : ty -> ty -> bool
(** Structural; latent effects compared with {!Core.Hexpr.equal}. *)

val pp_ty : ty Fmt.t
val pp_binop : binop Fmt.t
val pp : term Fmt.t

(** {1 Convenience constructors} *)

val lam : string -> ty -> term -> term
val fix : string -> string -> ty -> ty -> term -> term
val ( @@@ ) : term -> term -> term
val seq : term -> term -> term
(** [seq e1 e2] = [Let ("_", e1, e2)]. *)

val ev : ?arg:Usage.Value.t -> string -> term

lib/lambda_sec/eval.mli: Ast Core Fmt

lib/lambda_sec/infer.ml: Ast Core Effect Fmt List Result

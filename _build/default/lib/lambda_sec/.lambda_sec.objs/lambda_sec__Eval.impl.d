lib/lambda_sec/eval.ml: Ast Core Fmt List String

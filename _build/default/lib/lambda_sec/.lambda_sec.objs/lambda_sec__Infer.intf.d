lib/lambda_sec/infer.mli: Ast Core Fmt

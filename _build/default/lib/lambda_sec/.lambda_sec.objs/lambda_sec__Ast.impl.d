lib/lambda_sec/ast.ml: Core Fmt Usage

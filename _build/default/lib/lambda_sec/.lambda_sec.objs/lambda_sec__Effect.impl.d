lib/lambda_sec/effect.ml: Array Core Int List Set Usage

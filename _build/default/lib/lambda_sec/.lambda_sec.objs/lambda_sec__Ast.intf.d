lib/lambda_sec/ast.mli: Core Fmt Usage

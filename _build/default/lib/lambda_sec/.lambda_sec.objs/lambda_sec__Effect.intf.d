lib/lambda_sec/effect.mli: Core

(** Path-cost analyses on finite weighted graphs (non-negative weights).
    Nodes are integers [0 … n-1]. *)

val supremum :
  n:int -> edges:(int * float * int) list -> init:int -> float option
(** Supremum of the accumulated weight over all finite paths from
    [init]: [None] when unbounded (a positive-weight edge lies inside a
    cycle reachable from [init]), otherwise the longest-path value over
    the condensation. *)

val shortest_to :
  n:int ->
  edges:(int * float * int) list ->
  init:int ->
  target:(int -> bool) ->
  float option
(** Dijkstra: least accumulated weight from [init] to any node
    satisfying [target]; [None] if unreachable. *)

let weight model (act : Core.Action.t) =
  match act with
  | Core.Action.Evt e -> Model.cost model e
  | Core.Action.In _ | Core.Action.Out _ | Core.Action.Tau
  | Core.Action.Op _ | Core.Action.Cl _ | Core.Action.Frm_open _
  | Core.Action.Frm_close _ ->
      0.

let graph_of model h0 =
  let states = Core.Semantics.reachable h0 in
  let index =
    List.fold_left
      (fun (i, m) s -> (i + 1, Core.Semantics.Map.add s i m))
      (0, Core.Semantics.Map.empty)
      states
    |> snd
  in
  let id s = Core.Semantics.Map.find s index in
  let edges =
    List.concat_map
      (fun s ->
        List.map
          (fun (act, s') -> (id s, weight model act, id s'))
          (Core.Semantics.transitions s))
      states
  in
  (List.length states, edges, id h0, states, id)

let worst_case model h0 =
  let n, edges, init, _, _ = graph_of model h0 in
  Graph.supremum ~n ~edges ~init

let best_case model h0 =
  let n, edges, init, states, id = graph_of model h0 in
  let terminal = Array.make n false in
  List.iter
    (fun s -> if Core.Semantics.is_terminated s then terminal.(id s) <- true)
    states;
  Graph.shortest_to ~n ~edges ~init ~target:(fun v -> terminal.(v))

let expected ?(fuel = 64) model h0 =
  (* value iteration over the finite LTS: V_0 = 0;
     V_{k+1}(s) = mean over enabled moves of (weight + V_k(s')) *)
  let states = Core.Semantics.reachable h0 in
  let index =
    List.fold_left
      (fun (i, m) s -> (i + 1, Core.Semantics.Map.add s i m))
      (0, Core.Semantics.Map.empty)
      states
    |> snd
  in
  let id s = Core.Semantics.Map.find s index in
  let moves =
    List.map
      (fun s ->
        ( id s,
          List.map
            (fun (act, s') -> (weight model act, id s'))
            (Core.Semantics.transitions s) ))
      states
  in
  let n = List.length states in
  let v = ref (Array.make n 0.) in
  for _ = 1 to fuel do
    let v' = Array.make n 0. in
    List.iter
      (fun (i, outs) ->
        match outs with
        | [] -> v'.(i) <- 0.
        | _ ->
            let total =
              List.fold_left (fun acc (w, j) -> acc +. w +. !v.(j)) 0. outs
            in
            v'.(i) <- total /. float_of_int (List.length outs))
      moves;
    v := v'
  done;
  !v.(id h0)

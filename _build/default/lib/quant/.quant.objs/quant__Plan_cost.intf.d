lib/quant/plan_cost.mli: Core Fmt Model

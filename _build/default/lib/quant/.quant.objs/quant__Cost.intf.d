lib/quant/cost.mli: Core Model

lib/quant/graph.ml: Array List Map

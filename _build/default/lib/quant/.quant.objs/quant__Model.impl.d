lib/quant/model.ml: Fmt List Option Printf Usage

lib/quant/plan_cost.ml: Core Fmt Graph List Map Model Usage

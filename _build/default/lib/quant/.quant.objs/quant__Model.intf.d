lib/quant/model.mli: Fmt Usage

lib/quant/graph.mli:

lib/quant/cost.ml: Array Core Graph List Model

type t = { default : float; table : (string * float) list }

let of_list ?(default = 0.) table =
  List.iter
    (fun (name, c) ->
      if c < 0. then
        invalid_arg (Printf.sprintf "Quant.Model: negative cost for %s" name))
    (("<default>", default) :: table);
  { default; table }

let uniform c = of_list ~default:c []

let cost t (e : Usage.Event.t) =
  Option.value (List.assoc_opt e.name t.table) ~default:t.default

let pp ppf t =
  Fmt.pf ppf "{%a; _ -> %g}"
    Fmt.(list ~sep:(any "; ") (fun ppf (n, c) -> pf ppf "%s -> %g" n c))
    t.table t.default

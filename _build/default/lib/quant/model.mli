(** Cost models: a non-negative price per access event, by event name.
    The quantitative layer the paper leaves as future work (§5, “along
    the lines of [14]”): events are the billable operations, so the
    worst/best-case cost of a service is a property of its history
    expression. *)

type t

val of_list : ?default:float -> (string * float) list -> t
(** Raises [Invalid_argument] on a negative price. *)

val uniform : float -> t
val cost : t -> Usage.Event.t -> float
val pp : t Fmt.t

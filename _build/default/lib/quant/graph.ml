let out_edges n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (s, w, d) ->
      if w < 0. then invalid_arg "Quant.Graph: negative weight";
      adj.(s) <- (w, d) :: adj.(s))
    edges;
  adj

let reachable_from adj init =
  let n = Array.length adj in
  let seen = Array.make n false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter (fun (_, d) -> go d) adj.(s)
    end
  in
  go init;
  seen

(* Tarjan's strongly connected components, iterative. *)
let sccs adj reachable =
  let n = Array.length adj in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let counter = ref 0 in
  let n_comps = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (_, w) ->
        if index.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let c = !n_comps in
      incr n_comps;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- c;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if reachable.(v) && index.(v) = -1 then strongconnect v
  done;
  (comp, !n_comps)

let supremum ~n ~edges ~init =
  if n = 0 then Some 0.
  else begin
    let adj = out_edges n edges in
    let reach = reachable_from adj init in
    let comp, n_comps = sccs adj reach in
    (* unbounded iff a positive edge joins two nodes of one reachable SCC *)
    let unbounded =
      List.exists
        (fun (s, w, d) ->
          w > 0. && reach.(s) && comp.(s) = comp.(d))
        edges
    in
    if unbounded then None
    else begin
      (* longest path on the condensation: process components in reverse
         topological order (Tarjan numbers components in reverse order of
         completion, so increasing component id = reverse topological). *)
      let best = Array.make n_comps neg_infinity in
      best.(comp.(init)) <- 0.;
      (* components are numbered such that edges go from higher to lower
         completion; iterate in decreasing discovery: simple fixpoint is
         safest for clarity *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (s, w, d) ->
            if reach.(s) && best.(comp.(s)) > neg_infinity then begin
              let cand = best.(comp.(s)) +. w in
              if comp.(s) <> comp.(d) && cand > best.(comp.(d)) then begin
                best.(comp.(d)) <- cand;
                changed := true
              end
            end)
          edges
      done;
      let sup = Array.fold_left max 0. best in
      Some sup
    end
  end

module Pq = Map.Make (struct
  type t = float * int

  let compare = compare
end)

let shortest_to ~n ~edges ~init ~target =
  let adj = out_edges n edges in
  let dist = Array.make n infinity in
  dist.(init) <- 0.;
  let q = ref (Pq.singleton (0., init) ()) in
  let result = ref None in
  (try
     while not (Pq.is_empty !q) do
       let (d, v), () = Pq.min_binding !q in
       q := Pq.remove (d, v) !q;
       if d <= dist.(v) then begin
         if target v then begin
           result := Some d;
           raise Exit
         end;
         List.iter
           (fun (w, u) ->
             let nd = d +. w in
             if nd < dist.(u) then begin
               dist.(u) <- nd;
               q := Pq.add (nd, u) () !q
             end)
           adj.(v)
       end
     done
   with Exit -> ());
  !result

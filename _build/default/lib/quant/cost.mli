(** Worst- and best-case event cost of a stand-alone history expression,
    computed on its finite LTS. Communications, commits, session and
    framing actions are free; each access event is billed by the
    {!Model}. *)

val worst_case : Model.t -> Core.Hexpr.t -> float option
(** Supremum of the accumulated cost over all runs (equivalently over
    all finite prefixes); [None] when a reachable loop bills events, so
    the cost is unbounded. *)

val best_case : Model.t -> Core.Hexpr.t -> float option
(** Least cost of a {e terminating} run; [None] when no run
    terminates. *)

val expected : ?fuel:int -> Model.t -> Core.Hexpr.t -> float
(** Fuel-bounded expected cost under the uniform random scheduler: the
    mean accumulated event cost of a run truncated after [fuel]
    (default 64) steps. A lower bound of the true expectation; monotone
    in [fuel]. *)

(** Cost-aware orchestration: the worst-case billing of a client under a
    plan, and plan selection by price.

    The analysis runs over the same finite abstract configuration graph
    as {!Core.Netcheck} (component × policy cursors), so only executions
    permitted by the security monitor are billed. *)

val worst_case :
  Core.Network.repo ->
  Core.Plan.t ->
  string * Core.Hexpr.t ->
  Model.t ->
  float option
(** Supremum of the accumulated event cost over all runs of the planned
    client; [None] when unbounded (a billable loop). *)

type priced = {
  plan : Core.Plan.t;
  cost : float option;  (** [None] = unbounded *)
}

val cheapest :
  Core.Network.repo ->
  client:string * Core.Hexpr.t ->
  Model.t ->
  priced option
(** Among the {e valid} plans (per {!Core.Planner.valid_plans}), one
    with the least worst-case cost — bounded costs preferred over
    unbounded; [None] when no valid plan exists. *)

val pp_priced : priced Fmt.t

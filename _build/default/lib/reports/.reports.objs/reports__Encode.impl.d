lib/reports/encode.ml: Core Fmt Json List Quant Usage

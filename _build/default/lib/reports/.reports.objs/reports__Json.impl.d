lib/reports/json.ml: Buffer Char Float Fmt Printf String

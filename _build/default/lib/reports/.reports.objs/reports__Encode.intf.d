lib/reports/encode.mli: Core Json Quant

lib/reports/json.mli: Fmt

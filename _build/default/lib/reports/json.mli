(** A minimal JSON tree and printer (RFC 8259 string escaping), kept
    dependency-free so the CLI can emit machine-readable reports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : t Fmt.t
(** Compact (no insignificant whitespace beyond single spaces). *)

val to_string : t -> string

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control characters
    as [\uXXXX]). *)

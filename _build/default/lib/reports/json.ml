type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.12g" f
  | String s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List xs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") pp) xs
  | Obj fields ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ",") (fun ppf (k, v) ->
              pf ppf "\"%s\":%a" (escape k) pp v))
        fields

let to_string t = Fmt.str "%a" pp t

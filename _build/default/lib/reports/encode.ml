let plan p =
  Json.Obj
    (List.map
       (fun (r, l) -> (string_of_int r, Json.String l))
       (Core.Plan.bindings p))

let hexpr h = Json.String (Core.Hexpr.to_string h)

let stuck (s : Core.Netcheck.stuck) =
  let kind, detail =
    match s.Core.Netcheck.kind with
    | Core.Netcheck.Security p -> ("security", Json.String (Usage.Policy.id p))
    | Core.Netcheck.Communication -> ("communication", Json.Null)
    | Core.Netcheck.Unplanned_request r -> ("unplanned-request", Json.Int r)
  in
  Json.Obj
    [
      ("client", Json.String s.Core.Netcheck.client);
      ("kind", Json.String kind);
      ("detail", detail);
      ( "component",
        Json.String (Fmt.str "%a" Core.Network.pp_component s.Core.Netcheck.component) );
      ( "trace",
        Json.List
          (List.map
             (fun g -> Json.String (Fmt.str "%a" Core.Network.pp_glabel g))
             s.Core.Netcheck.trace) );
    ]

let counterexample (ce : Core.Product.counterexample) =
  Json.Obj
    [
      ( "synchronisations",
        Json.List (List.map (fun a -> Json.String a) ce.Core.Product.synchronisations) );
      ("client", Json.String (Core.Contract.to_string (fst ce.Core.Product.stuck)));
      ("server", Json.String (Core.Contract.to_string (snd ce.Core.Product.stuck)));
      ( "cause",
        Json.String (Fmt.str "%a" Core.Product.pp_stuck_reason ce.Core.Product.reason) );
    ]

let planner_report (r : Core.Planner.report) =
  let verdict, detail =
    match r.Core.Planner.verdict with
    | Ok stats ->
        ( "valid",
          Json.Obj
            [
              ("states", Json.Int stats.Core.Netcheck.states);
              ("transitions", Json.Int stats.Core.Netcheck.transitions);
            ] )
    | Error (Core.Planner.Unserved rid) -> ("unserved", Json.Int rid)
    | Error (Core.Planner.Not_compliant { rid; loc; counterexample = ce }) ->
        ( "not-compliant",
          Json.Obj
            [
              ("request", Json.Int rid);
              ("service", Json.String loc);
              ("counterexample", counterexample ce);
            ] )
    | Error (Core.Planner.Insecure s) -> ("insecure", stuck s)
    | Error (Core.Planner.Outside_fragment { rid; loc; reason }) ->
        ( "outside-fragment",
          Json.Obj
            [
              ("request", Json.Int rid);
              ("service", Json.String loc);
              ("reason", Json.String reason);
            ] )
  in
  Json.Obj
    [
      ("plan", plan r.Core.Planner.plan);
      ("verdict", Json.String verdict);
      ("detail", detail);
    ]

let netcheck_verdict = function
  | Core.Netcheck.Valid stats ->
      Json.Obj
        [
          ("verdict", Json.String "valid");
          ("states", Json.Int stats.Core.Netcheck.states);
          ("transitions", Json.Int stats.Core.Netcheck.transitions);
        ]
  | Core.Netcheck.Invalid s ->
      Json.Obj [ ("verdict", Json.String "invalid"); ("stuck", stuck s) ]

let sim_stats (s : Core.Simulate.stats) =
  Json.Obj
    [
      ("runs", Json.Int s.Core.Simulate.runs);
      ("completed", Json.Int s.Core.Simulate.completed);
      ("stuck", Json.Int s.Core.Simulate.stuck);
      ("out_of_fuel", Json.Int s.Core.Simulate.out_of_fuel);
      ("avg_steps", Json.Float s.Core.Simulate.avg_steps);
      ("avg_events", Json.Float s.Core.Simulate.avg_events);
      ("valid_histories", Json.Int s.Core.Simulate.outcomes_valid);
    ]

let priced (p : Quant.Plan_cost.priced) =
  Json.Obj
    [
      ("plan", plan p.Quant.Plan_cost.plan);
      ( "cost",
        match p.Quant.Plan_cost.cost with
        | Some c -> Json.Float c
        | None -> Json.Null );
    ]

let violation (v : Core.Validity.violation) =
  Json.Obj
    [
      ("policy", Json.String (Usage.Policy.id v.Core.Validity.policy));
      ( "prefix",
        Json.String (Fmt.str "%a" Core.History.pp v.Core.Validity.prefix) );
    ]

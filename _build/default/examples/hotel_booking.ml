open Core
(* The paper's §2 scenario end to end: compliance matrix, security
   checks, plan synthesis, and a Fig. 3-style run under the valid plan. *)

let pf = Format.printf

let section title = pf "@.== %s ==@." title

let () =
  section "Fig. 2 — the services";
  List.iter
    (fun (loc, h) -> pf "  %s = %a@." loc Hexpr.pp h)
    (("c1", Scenarios.Hotel.client1)
    :: ("c2", Scenarios.Hotel.client2)
    :: Scenarios.Hotel.repo)

let () =
  section "Compliance of the hotels with the broker (Theorem 1)";
  let body = Scenarios.Hotel.broker_request_body in
  List.iter
    (fun (loc, h) ->
      let c = Contract.project body and s = Contract.project h in
      match Product.counterexample c s with
      | None -> pf "  Br |- %s : compliant@." loc
      | Some ce ->
          pf "  Br |- %s : NOT compliant (%a)@." loc Product.pp_stuck_reason
            ce.Product.reason)
    Scenarios.Hotel.hotels

let () =
  section "Security of the hotels against the clients' policies";
  let check policy_name policy =
    List.iter
      (fun (loc, h) ->
        (* φ[H] statically valid ⟺ every event trace of H satisfies φ *)
        let ok = Result.is_ok (Validity.check_expr (Hexpr.frame policy h)) in
        pf "  %s against %s: %s@." loc policy_name
          (if ok then "respects" else "VIOLATES"))
      Scenarios.Hotel.hotels
  in
  check "phi1 = phi({s1},45,100)" Scenarios.Hotel.phi1;
  check "phi2 = phi({s1,s3},40,70)" Scenarios.Hotel.phi2

let () =
  section "Plans for client 1 (paper: {1[br],3[s3]} is valid)";
  let reports =
    Planner.valid_plans Scenarios.Hotel.repo ~client:("c1", Scenarios.Hotel.client1)
  in
  List.iter (fun r -> pf "  %a@." Planner.pp_report r) reports

let () =
  section "Plans for client 2 (paper: s2 non-compliant, s3 black-listed)";
  let reports =
    Planner.valid_plans Scenarios.Hotel.repo ~client:("c2", Scenarios.Hotel.client2)
  in
  List.iter (fun r -> pf "  %a@." Planner.pp_report r) reports

let () =
  section "behavioural coverage of the valid plan (100 random runs)";
  let cov =
    Simulate.coverage ~runs:100 Scenarios.Hotel.repo (fun () ->
        Network.initial ~plan:Scenarios.Hotel.plan1
          [ ("c1", Scenarios.Hotel.client1) ])
  in
  List.iter (fun (k, n) -> pf "  %-12s %4d@." k n) cov

let () =
  section "one run as a message sequence chart (Mermaid)";
  let t =
    Simulate.run Scenarios.Hotel.repo
      (Network.initial ~plan:Scenarios.Hotel.plan1
         [ ("c1", Scenarios.Hotel.client1) ])
      (Simulate.random ~seed:2)
  in
  Msc.pp_mermaid Format.std_formatter (Msc.of_trace t)

let () =
  section "Fig. 3 — a computation of C1 under the valid plan";
  let cfg =
    Network.initial ~plan:Scenarios.Hotel.plan1 [ ("c1", Scenarios.Hotel.client1) ]
  in
  let trace =
    Simulate.run Scenarios.Hotel.repo cfg
      (Simulate.prefer
         [ (function Network.L_sync (_, _, "noav") -> true | _ -> false) ])
  in
  Simulate.pp_trace Format.std_formatter trace

(* An e-commerce marketplace (see Scenarios.Ecommerce): a shopper buys
   through a marketplace that delegates payment to one of three
   providers. The shopper imposes a spending-limit policy on the whole
   (nested) session; a second variant additionally wraps itself in an
   authenticate-before-charge framing — layered policies across session
   boundaries, which the paper's history-dependent validity handles for
   free. Ends with a cost-aware plan selection (the quantitative
   extension). *)

open Core
open Scenarios

let pf = Format.printf

let () =
  pf "== services ==@.";
  List.iter (fun (l, h) -> pf "  %s = %a@." l Hexpr.pp h) Ecommerce.repo;

  pf "@.== plans for the shopper (spend(100)) ==@.";
  List.iter
    (fun r -> pf "  %a@." Planner.pp_report r)
    (Planner.valid_plans Ecommerce.repo ~client:("shopper", Ecommerce.shopper));

  pf "@.== plans for the careful shopper (auth_first[spend(100)]) ==@.";
  List.iter
    (fun r -> pf "  %a@." Planner.pp_report r)
    (Planner.valid_plans Ecommerce.repo
       ~client:("carol", Ecommerce.careful_shopper));

  (* bravo fails the plain shopper on the spending limit; with a lax
     limit it still fails the careful shopper on authentication *)
  pf "@.== with a higher limit, authentication still matters ==@.";
  let lax =
    Hexpr.frame Ecommerce.auth_first
      (Hexpr.open_ ~rid:12 ~policy:(Ecommerce.spend 1000)
         (Hexpr.select
            [ ("order", Hexpr.branch [ ("ok", Hexpr.nil); ("fail", Hexpr.nil) ]) ]))
  in
  let r =
    Planner.analyze Ecommerce.repo ~client:("lax", lax)
      (Plan.of_list [ (12, "mkt"); (20, "bravo") ])
  in
  pf "  %a@." Planner.pp_report r;

  pf "@.== a full run (careful shopper via alpha) ==@.";
  let t =
    Simulate.run Ecommerce.repo
      (Network.initial ~plan:Ecommerce.careful_plan
         [ ("carol", Ecommerce.careful_shopper) ])
      (Simulate.random ~seed:11)
  in
  Simulate.pp_trace_compact Fmt.stdout t;
  (match t.Simulate.final with
  | [ c ] ->
      pf "carol's history: %a@." History.pp
        (Validity.Monitor.history c.Network.monitor)
  | _ -> ());

  (* the quantitative extension: pick the cheapest valid plan when
     charges are billed at face value *)
  pf "@.== cost-aware planning ==@.";
  let model = Quant.Model.of_list [ ("charge", 1.0); ("auth", 0.1) ] in
  match Quant.Plan_cost.cheapest Ecommerce.repo ~client:("shopper", Ecommerce.shopper) model with
  | Some priced -> pf "  cheapest: %a@." Quant.Plan_cost.pp_priced priced
  | None -> pf "  no valid plan@."

(* The full pipeline the paper assumes around its calculus: services are
   written in a λ-calculus with events and sessions; a type-and-effect
   system abstracts them into history expressions; the static machinery
   then validates plans — after which the λ-programs can run with the
   runtime security monitor switched off. *)

open Lambda_sec

let pf = Format.printf

(* The paper's client C1, as a program. *)
let client_program =
  Ast.Request
    {
      rid = 1;
      policy = Some Scenarios.Hotel.phi1;
      body =
        Ast.seq (Ast.Send "req")
          (Ast.Recv [ ("cobo", Ast.Send "pay"); ("noav", Ast.Unit) ]);
    }

(* A hotel as a program: whether rooms are available is a runtime
   condition; the effect system abstracts the data-dependent [if] into
   the paper's internal choice ⊕. *)
let hotel_program available =
  Ast.seq
    (Ast.ev ~arg:(Usage.Value.str "s3") "sgn")
    (Ast.seq
       (Ast.ev ~arg:(Usage.Value.int 90) "price")
       (Ast.seq
          (Ast.ev ~arg:(Usage.Value.int 100) "rating")
          (Ast.Recv
             [ ("idc", Ast.If (available, Ast.Send "bok", Ast.Send "una")) ])))

(* A reusable λ-function with a latent effect: audited sending. *)
let audited_send =
  Ast.lam "x" Ast.TUnit (Ast.seq (Ast.ev "audit") (Ast.Send "req"))

let () =
  pf "== type and effect inference ==@.";
  (match Infer.infer [] client_program with
  | Ok (ty, eff) ->
      pf "  client : %a@.  effect = %a@." Ast.pp_ty ty Core.Hexpr.pp eff;
      pf "  matches Fig. 2's C1: %b@."
        (Core.Hexpr.equal (Core.Hexpr.normalize eff) Scenarios.Hotel.client1)
  | Error e -> pf "  error: %a@." Infer.pp_error e);

  (match Infer.infer [] (hotel_program (Ast.Eq (Ast.Int 0, Ast.Int 0))) with
  | Ok (_, eff) ->
      pf "  hotel effect = %a@." Core.Hexpr.pp (Core.Hexpr.normalize eff);
      pf "  matches Fig. 2's S3: %b@."
        (Core.Hexpr.equal (Core.Hexpr.normalize eff) Scenarios.Hotel.s3)
  | Error e -> pf "  error: %a@." Infer.pp_error e);

  (match Infer.infer [] audited_send with
  | Ok (ty, _) -> pf "  audited_send : %a@." Ast.pp_ty ty
  | Error e -> pf "  error: %a@." Infer.pp_error e);

  pf "@.== static verification on the inferred effects ==@.";
  (match Infer.infer [] client_program with
  | Ok (_, eff) ->
      let client = Core.Hexpr.normalize eff in
      let reports =
        Core.Planner.valid_plans ~all:false Scenarios.Hotel.repo
          ~client:("c1", client)
      in
      List.iter (fun r -> pf "  %a@." Core.Planner.pp_report r) reports
  | Error _ -> ());

  pf "@.== running the λ-programs ==@.";
  (* The hotel violates no policy of its own: run it with the monitor. *)
  (match Eval.eval (hotel_program (Ast.Bool true)) with
  | Ok (_, h) -> pf "  hotel run history: %a@." Core.History.pp h
  | Error e -> pf "  hotel run failed: %a@." Eval.pp_error e);

  (* A program that would violate its own framing: the monitor stops it … *)
  let no_leak = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.never "leak") in
  let bad = Ast.Framed (no_leak, Ast.seq (Ast.ev "log") (Ast.ev "leak")) in
  (match Eval.eval bad with
  | Ok _ -> pf "  unexpected success@."
  | Error e -> pf "  monitored run: %a@." Eval.pp_error e);

  (* … while a statically validated program runs monitor-free. *)
  let good = Ast.Framed (no_leak, Ast.seq (Ast.ev "log") (Ast.ev "store")) in
  (match Infer.infer [] good with
  | Ok (_, eff) ->
      (match Core.Validity.check_expr eff with
      | Ok () ->
          pf "  static validity OK — running with the monitor off:@.";
          (match Eval.eval ~monitor:false good with
          | Ok (_, h) -> pf "    history %a (valid: %b)@." Core.History.pp h (Core.Validity.valid h)
          | Error e -> pf "    failed: %a@." Eval.pp_error e)
      | Error v -> pf "  static violation: %a@." Core.Validity.pp_violation v)
  | Error e -> pf "  type error: %a@." Infer.pp_error e)

examples/cloud_workflow.mli:

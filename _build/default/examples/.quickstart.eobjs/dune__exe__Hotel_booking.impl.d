examples/hotel_booking.ml: Contract Core Format Hexpr List Msc Network Planner Product Result Scenarios Simulate Validity

examples/ecommerce.mli:

examples/ecommerce.ml: Core Ecommerce Fmt Format Hexpr History List Network Plan Planner Quant Scenarios Simulate Validity

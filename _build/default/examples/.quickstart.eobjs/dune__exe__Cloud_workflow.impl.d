examples/cloud_workflow.ml: Cloud Core Fmt Format History List Netcheck Network Plan Planner Quant Scenarios Simulate Validity

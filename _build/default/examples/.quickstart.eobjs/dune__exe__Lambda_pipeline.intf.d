examples/lambda_pipeline.mli:

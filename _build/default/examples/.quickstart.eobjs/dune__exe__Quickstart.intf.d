examples/quickstart.mli:

examples/quickstart.ml: Contract Core Fmt Format Hexpr List Network Plan Planner Product Result Simulate Usage Validity

examples/hotel_booking.mli:

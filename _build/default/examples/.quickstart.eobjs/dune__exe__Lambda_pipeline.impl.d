examples/lambda_pipeline.ml: Ast Core Eval Format Infer Lambda_sec List Scenarios Usage

(* Quickstart: define a client and two candidate services, check
   compliance (Theorem 1), check security (validity), and let the
   planner pick the services that make the composition secure and
   unfailing. *)

open Core

let pf = Format.printf

(* A policy from the standard library: never fire the event "leak". *)
let no_leak = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.never "leak")

(* The protocol the client runs inside its session. *)
let protocol =
  Hexpr.select
    [ ("query", Hexpr.branch [ ("answer", Hexpr.nil); ("sorry", Hexpr.nil) ]) ]

(* The client: open a session governed by [no_leak] and run it. *)
let client = Hexpr.open_ ~rid:1 ~policy:no_leak protocol

(* A well-behaved server: logs, then answers or refuses on its own. *)
let good_server =
  Hexpr.seq (Hexpr.ev "log")
    (Hexpr.branch
       [ ("query", Hexpr.select [ ("answer", Hexpr.nil); ("sorry", Hexpr.nil) ]) ])

(* A server that may also send an unexpected "redirect" (non-compliant),
   and one that leaks (insecure). *)
let chatty_server =
  Hexpr.branch
    [
      ( "query",
        Hexpr.select
          [ ("answer", Hexpr.nil); ("sorry", Hexpr.nil); ("redirect", Hexpr.nil) ] );
    ]

let leaky_server =
  Hexpr.seq (Hexpr.ev "leak")
    (Hexpr.branch [ ("query", Hexpr.select [ ("answer", Hexpr.nil) ]) ])

let repo =
  [ ("good", good_server); ("chatty", chatty_server); ("leaky", leaky_server) ]

let () =
  pf "client = %a@." Hexpr.pp client;
  List.iter (fun (l, h) -> pf "%s = %a@." l Hexpr.pp h) repo;

  (* 1. Compliance of each candidate, via the product automaton. *)
  pf "@.-- compliance (Theorem 1) --@.";
  let body = Contract.project protocol in
  List.iter
    (fun (loc, h) ->
      match Product.counterexample body (Contract.project h) with
      | None -> pf "  %s: compliant@." loc
      | Some ce ->
          pf "  %s: NOT compliant — %a@." loc Product.pp_stuck_reason
            ce.Product.reason)
    repo;

  (* 2. Security: which services respect the policy? *)
  pf "@.-- security --@.";
  List.iter
    (fun (loc, h) ->
      (* φ[H] statically valid ⟺ every trace of H satisfies φ *)
      let ok = Result.is_ok (Validity.check_expr (Hexpr.frame no_leak h)) in
      pf "  %s: %s@." loc (if ok then "respects no_leak" else "VIOLATES no_leak"))
    repo;

  (* 3. The planner combines both checks. *)
  pf "@.-- plans --@.";
  let reports = Planner.valid_plans repo ~client:("me", client) in
  List.iter (fun r -> pf "  %a@." Planner.pp_report r) reports;

  (* 4. Run the composition under the valid plan: no monitor needed. *)
  pf "@.-- a run under the valid plan --@.";
  let plan = Plan.of_list [ (1, "good") ] in
  let t =
    Simulate.run repo
      (Network.initial ~plan [ ("me", client) ])
      (Simulate.random ~seed:3)
  in
  Simulate.pp_trace_compact Fmt.stdout t

(* A three-level cloud workflow (see Scenarios.Cloud): analyst →
   orchestrator → worker → storage. Sessions nest three deep; the policy
   imposed by the analyst at the top constrains write events performed
   by the storage service two sessions below. Storage is a recursive
   service (guarded tail recursion). *)

open Core
open Scenarios

let pf = Format.printf

let () =
  pf "== the workflow (frugal worker: 2 writes) ==@.";
  List.iter
    (fun r -> pf "  %a@." Planner.pp_report r)
    (Planner.valid_plans
       (Cloud.repo ~worker:Cloud.frugal_worker)
       ~client:("ana", Cloud.analyst));

  pf "@.== the greedy worker (3 writes) breaks the analyst's policy ==@.";
  let r3 =
    Planner.analyze
      (Cloud.repo ~worker:Cloud.greedy_worker)
      ~client:("ana", Cloud.analyst) Cloud.good_plan
  in
  pf "  %a@." Planner.pp_report r3;

  pf "@.== snapshot-then-delete storage under a stricter analyst ==@.";
  let r =
    Planner.analyze
      (Cloud.repo ~worker:Cloud.frugal_worker)
      ~client:("ana", Cloud.strict_analyst)
      (Plan.of_list [ (1, "orc"); (2, "wrk"); (3, "compact") ])
  in
  pf "  %a@." Planner.pp_report r;

  pf "@.== a run three sessions deep ==@.";
  let t =
    Simulate.run
      (Cloud.repo ~worker:Cloud.frugal_worker)
      (Network.initial ~plan:Cloud.good_plan [ ("ana", Cloud.analyst) ])
      Simulate.first
  in
  Simulate.pp_trace_compact Fmt.stdout t;
  (match t.Simulate.final with
  | [ c ] ->
      pf "ana's history: %a@." History.pp
        (Validity.Monitor.history c.Network.monitor)
  | _ -> ());

  pf "@.== statically: the flaky storage would deadlock the worker ==@.";
  (match
     Netcheck.check_client
       (Cloud.repo ~worker:Cloud.frugal_worker)
       (Plan.of_list [ (1, "orc"); (2, "wrk"); (3, "flaky") ])
       ("ana", Cloud.analyst)
   with
  | Netcheck.Valid _ -> pf "  unexpected: valid@."
  | Netcheck.Invalid s -> pf "  %a@." Netcheck.pp_stuck s);

  pf "@.== worst-case storage bill ==@.";
  let model = Quant.Model.of_list [ ("write", 5.0) ] in
  match
    Quant.Plan_cost.worst_case
      (Cloud.repo ~worker:Cloud.frugal_worker)
      Cloud.good_plan ("ana", Cloud.analyst) model
  with
  | Some c -> pf "  the frugal worker bills at most %g@." c
  | None -> pf "  unbounded@."

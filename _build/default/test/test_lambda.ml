(* The service λ-calculus: typing, effect inference, evaluation, and
   effect soundness on concrete programs. *)

open Lambda_sec

let never_z = List.nth Testkit.Generators.policy_pool 0
let h_testable = Alcotest.testable Core.Hexpr.pp Core.Hexpr.equal
let ty_testable = Alcotest.testable Ast.pp_ty Ast.ty_equal

let infer_ok e =
  match Infer.infer [] e with
  | Ok r -> r
  | Error err -> Alcotest.failf "inference failed: %a" Infer.pp_error err

let test_base_types () =
  let ty, eff = infer_ok Ast.Unit in
  Alcotest.check ty_testable "unit" Ast.TUnit ty;
  Alcotest.check h_testable "pure" Core.Hexpr.nil eff;
  let ty, _ = infer_ok (Ast.Int 3) in
  Alcotest.check ty_testable "int" Ast.TInt ty

let test_event_effect () =
  let _, eff = infer_ok (Ast.ev ~arg:(Usage.Value.int 1) "x") in
  Alcotest.check h_testable "event effect"
    (Core.Hexpr.ev ~arg:(Usage.Value.int 1) "x")
    eff

let test_seq_effect () =
  let e = Ast.seq (Ast.ev "x") (Ast.ev "y") in
  let _, eff = infer_ok e in
  Alcotest.check h_testable "sequencing"
    (Core.Hexpr.seq (Core.Hexpr.ev "x") (Core.Hexpr.ev "y"))
    eff

let test_latent_effect () =
  (* (λx. ev y) fired at application, not at definition *)
  let f = Ast.lam "x" Ast.TUnit (Ast.ev "y") in
  let _, eff_def = infer_ok f in
  Alcotest.check h_testable "definition is pure" Core.Hexpr.nil eff_def;
  let _, eff_app = infer_ok (Ast.(f @@@ Unit)) in
  Alcotest.check h_testable "application fires" (Core.Hexpr.ev "y") eff_app

let test_recursive_effect () =
  (* fix f x = ev a?; f x — latent effect μh. a?.h *)
  let f =
    Ast.fix "f" "x" Ast.TUnit Ast.TUnit
      (Ast.seq (Ast.Recv [ ("a", Ast.Unit) ]) Ast.(Var "f" @@@ Var "x"))
  in
  let _, eff = infer_ok Ast.(f @@@ Unit) in
  Alcotest.check h_testable "mu effect"
    (Core.Hexpr.mu "h_f" (Core.Hexpr.branch [ ("a", Core.Hexpr.var "h_f") ]))
    (Core.Hexpr.normalize eff)

let test_recursion_needs_annotation () =
  let f = Ast.Fun { self = Some "f"; param = "x"; param_ty = Ast.TUnit; ret_ty = None; body = Ast.Unit } in
  match Infer.infer [] f with
  | Error (Infer.Needs_annotation "f") -> ()
  | _ -> Alcotest.fail "expected annotation error"

let test_if_internal_choice () =
  (* if c then (send a; …) else (send b; …) ⇒ a!.… ⊕ b!.… *)
  let e =
    Ast.If
      ( Ast.Bool true,
        Ast.seq (Ast.Send "a") (Ast.ev "x"),
        Ast.seq (Ast.Send "b") (Ast.ev "y") )
  in
  let _, eff = infer_ok e in
  Alcotest.check h_testable "internal choice"
    (Core.Hexpr.select
       [ ("a", Core.Hexpr.ev "x"); ("b", Core.Hexpr.ev "y") ])
    eff

let test_if_falls_back_to_choice () =
  let e = Ast.If (Ast.Bool true, Ast.ev "x", Ast.ev "y") in
  let _, eff = infer_ok e in
  match eff with
  | Core.Hexpr.Choice (_, _) -> ()
  | _ -> Alcotest.failf "expected a Choice effect, got %a" Core.Hexpr.pp eff

let test_framed_and_request () =
  let e =
    Ast.Request
      { rid = 1; policy = Some never_z; body = Ast.Framed (never_z, Ast.ev "x") }
  in
  let _, eff = infer_ok e in
  Alcotest.check h_testable "request effect"
    (Core.Hexpr.open_ ~rid:1 ~policy:never_z
       (Core.Hexpr.frame never_z (Core.Hexpr.ev "x")))
    eff

let test_type_errors () =
  let bad_app = Ast.(Int 1 @@@ Int 2) in
  (match Infer.infer [] bad_app with
  | Error (Infer.Not_a_function _) -> ()
  | _ -> Alcotest.fail "expected Not_a_function");
  let bad_if = Ast.If (Ast.Int 1, Ast.Unit, Ast.Unit) in
  (match Infer.infer [] bad_if with
  | Error (Infer.Mismatch _) -> ()
  | _ -> Alcotest.fail "expected Mismatch");
  let diff_branches = Ast.If (Ast.Bool true, Ast.Unit, Ast.Int 1) in
  (match Infer.infer [] diff_branches with
  | Error (Infer.Branches_differ _) -> ()
  | _ -> Alcotest.fail "expected Branches_differ");
  match Infer.infer [] (Ast.Var "ghost") with
  | Error (Infer.Unbound "ghost") -> ()
  | _ -> Alcotest.fail "expected Unbound"

let eval_ok ?monitor ?strategy e =
  match Eval.eval ?monitor ?strategy e with
  | Ok r -> r
  | Error err -> Alcotest.failf "evaluation failed: %a" Eval.pp_error err

let test_eval_basics () =
  let v, h = eval_ok (Ast.seq (Ast.ev "x") (Ast.Int 5)) in
  (match v with
  | Eval.VInt 5 -> ()
  | _ -> Alcotest.fail "expected 5");
  Alcotest.(check int) "one event logged" 1 (List.length h)

let test_eval_let_closure () =
  let e =
    Ast.Let
      ( "f",
        Ast.lam "x" Ast.TInt (Ast.Eq (Ast.Var "x", Ast.Int 2)),
        Ast.(Var "f" @@@ Int 2) )
  in
  match fst (eval_ok e) with
  | Eval.VBool true -> ()
  | _ -> Alcotest.fail "expected true"

let test_eval_recursion () =
  (* a loop that receives n times then stops, via the scripted strategy *)
  let f =
    Ast.fix "f" "x" Ast.TUnit Ast.TUnit
      (Ast.Recv [ ("more", Ast.seq (Ast.ev "x") Ast.(Var "f" @@@ Unit)); ("stop", Ast.Unit) ])
  in
  let _, h =
    eval_ok ~strategy:(Eval.scripted [ "more"; "more"; "stop" ]) Ast.(f @@@ Unit)
  in
  Alcotest.(check int) "two iterations logged" 2 (List.length h)

let test_monitor_aborts () =
  let bad = Ast.Framed (never_z, Ast.ev "z") in
  (match Eval.eval bad with
  | Error (Eval.Security _) -> ()
  | _ -> Alcotest.fail "expected a security abort");
  (* with the monitor off, the program completes and the violation is
     visible in the history *)
  match Eval.eval ~monitor:false bad with
  | Ok (_, h) -> Alcotest.(check bool) "history invalid" false (Core.Validity.valid h)
  | Error _ -> Alcotest.fail "monitor-off run must complete"

let test_effect_soundness_concrete () =
  (* the logged history of every run is admitted by the inferred effect *)
  let program =
    Ast.Framed
      ( never_z,
        Ast.If
          ( Ast.Eq (Ast.Int 1, Ast.Int 1),
            Ast.seq (Ast.Send "a") (Ast.ev "x"),
            Ast.seq (Ast.Send "b") (Ast.ev "y") ) )
  in
  let _, eff = infer_ok program in
  let _, h = eval_ok program in
  Alcotest.(check bool) "history admitted" true (Effect.admits eff h)

let test_admits () =
  let eff = Core.Hexpr.branch [ ("a", Core.Hexpr.ev "x"); ("b", Core.Hexpr.ev "y") ] in
  let x = Core.History.Ev (Usage.Event.make "x") in
  let y = Core.History.Ev (Usage.Event.make "y") in
  Alcotest.(check bool) "x admitted" true (Effect.admits eff [ x ]);
  Alcotest.(check bool) "y admitted" true (Effect.admits eff [ y ]);
  Alcotest.(check bool) "xy not admitted" false (Effect.admits eff [ x; y ]);
  Alcotest.(check bool) "empty admitted" true (Effect.admits eff [])

(* The paper's client C1, written as a λ-program: its inferred effect is
   exactly the history expression of Fig. 2. *)
let lambda_client1 =
  Ast.Request
    {
      rid = 1;
      policy = Some Scenarios.Hotel.phi1;
      body =
        Ast.seq (Ast.Send "req")
          (Ast.Recv
             [ ("cobo", Ast.Send "pay"); ("noav", Ast.Unit) ]);
    }

let test_hotel_client_in_lambda () =
  let _, eff = infer_ok lambda_client1 in
  Alcotest.check h_testable "same as Fig. 2"
    Scenarios.Hotel.client1
    (Core.Hexpr.normalize eff)

(* A λ-hotel whose data-driven choice becomes the paper's ⊕ *)
let lambda_hotel available =
  Ast.seq
    (Ast.ev ~arg:(Usage.Value.str "s4") "sgn")
    (Ast.seq
       (Ast.ev ~arg:(Usage.Value.int 50) "price")
       (Ast.seq
          (Ast.ev ~arg:(Usage.Value.int 90) "rating")
          (Ast.Recv
             [
               ( "idc",
                 Ast.If
                   (available, Ast.Send "bok", Ast.Send "una") );
             ])))

let test_hotel_service_in_lambda () =
  let _, eff = infer_ok (lambda_hotel (Ast.Eq (Ast.Int 1, Ast.Int 1))) in
  Alcotest.check h_testable "same as Fig. 2 S4"
    Scenarios.Hotel.s4
    (Core.Hexpr.normalize eff)

let suite =
  [
    Alcotest.test_case "base types" `Quick test_base_types;
    Alcotest.test_case "event effect" `Quick test_event_effect;
    Alcotest.test_case "sequencing effect" `Quick test_seq_effect;
    Alcotest.test_case "latent effects" `Quick test_latent_effect;
    Alcotest.test_case "recursive latent effect" `Quick test_recursive_effect;
    Alcotest.test_case "recursion needs annotation" `Quick test_recursion_needs_annotation;
    Alcotest.test_case "if as internal choice" `Quick test_if_internal_choice;
    Alcotest.test_case "if fallback to Choice" `Quick test_if_falls_back_to_choice;
    Alcotest.test_case "framing and request effects" `Quick test_framed_and_request;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "evaluation basics" `Quick test_eval_basics;
    Alcotest.test_case "closures" `Quick test_eval_let_closure;
    Alcotest.test_case "recursion and strategies" `Quick test_eval_recursion;
    Alcotest.test_case "runtime monitor" `Quick test_monitor_aborts;
    Alcotest.test_case "effect soundness (concrete)" `Quick test_effect_soundness_concrete;
    Alcotest.test_case "admits" `Quick test_admits;
    Alcotest.test_case "C1 as a λ-program" `Quick test_hotel_client_in_lambda;
    Alcotest.test_case "S4 as a λ-program" `Quick test_hotel_service_in_lambda;
  ]

(* --- arithmetic and pairs --- *)

let test_arith () =
  let v, _ = eval_ok (Ast.Binop (Ast.Add, Ast.Int 2, Ast.Binop (Ast.Mul, Ast.Int 3, Ast.Int 4))) in
  (match v with Eval.VInt 14 -> () | _ -> Alcotest.fail "expected 14");
  let v, _ = eval_ok (Ast.Binop (Ast.Lt, Ast.Int 1, Ast.Int 2)) in
  (match v with Eval.VBool true -> () | _ -> Alcotest.fail "expected true");
  let ty, _ = infer_ok (Ast.Binop (Ast.Sub, Ast.Int 5, Ast.Int 3)) in
  Alcotest.check ty_testable "int" Ast.TInt ty;
  let ty, _ = infer_ok (Ast.Binop (Ast.Leq, Ast.Int 5, Ast.Int 3)) in
  Alcotest.check ty_testable "bool" Ast.TBool ty;
  match Infer.infer [] (Ast.Binop (Ast.Add, Ast.Bool true, Ast.Int 1)) with
  | Error (Infer.Mismatch _) -> ()
  | _ -> Alcotest.fail "expected a type error"

let test_pairs () =
  let e = Ast.Pair (Ast.Int 1, Ast.Pair (Ast.Bool true, Ast.Unit)) in
  let ty, _ = infer_ok e in
  Alcotest.check ty_testable "nested pair"
    (Ast.TPair (Ast.TInt, Ast.TPair (Ast.TBool, Ast.TUnit)))
    ty;
  (match fst (eval_ok (Ast.Fst e)) with
  | Eval.VInt 1 -> ()
  | _ -> Alcotest.fail "fst");
  (match fst (eval_ok (Ast.Snd (Ast.Snd e))) with
  | Eval.VUnit -> ()
  | _ -> Alcotest.fail "snd.snd");
  match Infer.infer [] (Ast.Fst (Ast.Int 1)) with
  | Error (Infer.Mismatch _) -> ()
  | _ -> Alcotest.fail "fst needs a pair"

let test_pair_effects_ordered () =
  (* effects of pair components run left to right *)
  let e = Ast.Pair (Ast.ev "x", Ast.ev "y") in
  let _, eff = infer_ok e in
  Alcotest.check h_testable "sequenced"
    (Core.Hexpr.seq (Core.Hexpr.ev "x") (Core.Hexpr.ev "y"))
    eff;
  let _, h = eval_ok e in
  Alcotest.(check int) "both logged" 2 (List.length h)

let test_arith_parsing () =
  let t = Syntax.Parser.term_of_string "1 + 2 * 3 < 10" in
  (match fst (match Eval.eval t with Ok r -> r | Error _ -> Alcotest.fail "eval") with
  | Eval.VBool true -> ()
  | _ -> Alcotest.fail "left-assoc arithmetic: (1+2)*3 = 9 < 10");
  let p = Syntax.Parser.term_of_string "fst (1, true)" in
  match Eval.eval p with
  | Ok (Eval.VInt 1, _) -> ()
  | _ -> Alcotest.fail "pair projection from source"

let suite =
  suite
  @ [
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "pairs" `Quick test_pairs;
      Alcotest.test_case "pair effects ordered" `Quick test_pair_effects_ordered;
      Alcotest.test_case "arithmetic parsing" `Quick test_arith_parsing;
    ]

(* --- effect soundness on generated programs --- *)

let prop_generated_terms_type =
  QCheck.Test.make ~name:"generated terms are well-typed" ~count:300
    Testkit.Generators.lambda_arb (fun t ->
      match Infer.infer [] t with
      | Ok (Ast.TUnit, _) -> true
      | Ok (ty, _) ->
          QCheck.Test.fail_reportf "unexpected type %a" Ast.pp_ty ty
      | Error e -> QCheck.Test.fail_reportf "ill-typed: %a" Infer.pp_error e)

let prop_effect_soundness =
  QCheck.Test.make ~name:"logged histories are admitted by the effect"
    ~count:300 Testkit.Generators.lambda_arb (fun t ->
      match Infer.infer [] t with
      | Error _ -> false
      | Ok (_, eff) -> (
          match Eval.eval ~monitor:false t with
          | Error _ -> true (* stuck terms are not generated, but be safe *)
          | Ok (_, h) -> Effect.admits eff h))

let prop_monitored_histories_valid =
  QCheck.Test.make ~name:"monitored runs only log valid histories" ~count:300
    Testkit.Generators.lambda_arb (fun t ->
      match Eval.eval t with
      | Ok (_, h) -> Core.Validity.valid h
      | Error (Eval.Security _) -> true
      | Error (Eval.Stuck _) -> false)

let prop_static_validity_entails_monitor_free =
  QCheck.Test.make
    ~name:"statically valid effects run monitor-free without violations"
    ~count:300 Testkit.Generators.lambda_arb (fun t ->
      match Infer.infer [] t with
      | Error _ -> false
      | Ok (_, eff) ->
          if Result.is_ok (Core.Validity.check_expr eff) then
            match Eval.eval ~monitor:false t with
            | Ok (_, h) -> Core.Validity.valid h
            | Error _ -> true
          else true)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_generated_terms_type;
      QCheck_alcotest.to_alcotest prop_effect_soundness;
      QCheck_alcotest.to_alcotest prop_monitored_histories_valid;
      QCheck_alcotest.to_alcotest prop_static_validity_entails_monitor_free;
    ]

(* Lexer, parser, and spec elaboration — including the whole hotel
   scenario from its .susf source and a pp/parse round trip. *)

open Core

let h_testable = Alcotest.testable Hexpr.pp Hexpr.equal

let parse ?automata s = Syntax.Parser.hexpr_of_string ?automata s
let phi_env = [ ("phi", Usage.Policy_lib.hotel) ]

let test_lexer_basics () =
  let toks = Syntax.Lexer.tokenize "a?.(b! (+) c!) // comment\n <+> <= --> 42" in
  let kinds = List.map (fun t -> t.Syntax.Lexer.token) toks in
  Alcotest.(check int) "token count" 15 (List.length kinds);
  Alcotest.(check bool) "has OPLUS" true (List.mem Syntax.Lexer.OPLUS kinds);
  Alcotest.(check bool) "has CHOICE" true (List.mem Syntax.Lexer.CHOICE kinds);
  Alcotest.(check bool) "has EDGEARROW" true (List.mem Syntax.Lexer.EDGEARROW kinds);
  Alcotest.(check bool) "has INT 42" true (List.mem (Syntax.Lexer.INTLIT 42) kinds)

let test_lexer_positions () =
  match Syntax.Lexer.tokenize "a\n  b" with
  | [ _; b; _eof ] ->
      Alcotest.(check int) "line" 2 b.Syntax.Lexer.line;
      Alcotest.(check int) "col" 3 b.Syntax.Lexer.col
  | _ -> Alcotest.fail "expected two idents"

let test_lexer_error () =
  match Syntax.Lexer.tokenize "a $ b" with
  | exception Syntax.Lexer.Error (_, 1, 3) -> ()
  | _ -> Alcotest.fail "expected a lexer error at 1:3"

let test_parse_atoms () =
  Alcotest.check h_testable "eps" Hexpr.nil (parse "eps");
  Alcotest.check h_testable "recv" (Hexpr.recv "a") (parse "a?");
  Alcotest.check h_testable "send" (Hexpr.send "a") (parse "a!");
  Alcotest.check h_testable "event" (Hexpr.ev "x") (parse "#x");
  Alcotest.check h_testable "event with arg"
    (Hexpr.ev ~arg:(Usage.Value.int 45) "price")
    (parse "#price(45)");
  Alcotest.check h_testable "event with str arg"
    (Hexpr.ev ~arg:(Usage.Value.str "s1") "sgn")
    (parse "#sgn(s1)")

let test_parse_choices () =
  Alcotest.check h_testable "external"
    (Hexpr.branch [ ("a", Hexpr.nil); ("b", Hexpr.nil) ])
    (parse "a? + b?");
  Alcotest.check h_testable "internal"
    (Hexpr.select [ ("a", Hexpr.ev "x"); ("b", Hexpr.nil) ])
    (parse "a!.#x (+) b!");
  Alcotest.check h_testable "prefix continuation folded"
    (Hexpr.branch [ ("a", Hexpr.ev "x") ])
    (parse "a? . #x")

let test_parse_seq_mu () =
  Alcotest.check h_testable "seq of events"
    (Hexpr.seq (Hexpr.ev "x") (Hexpr.ev "y"))
    (parse "#x . #y");
  Alcotest.check h_testable "mu loop"
    (Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h") ]))
    (parse "mu h. a?.h")

let test_parse_sessions () =
  Alcotest.check h_testable "open no policy"
    (Hexpr.open_ ~rid:3 (Hexpr.send "idc"))
    (parse "open(3){ idc! }");
  let phi = Usage.Policy_lib.hotel_policy ~blacklist:[ "s1" ] ~price:45 ~rating:100 in
  Alcotest.check h_testable "open with policy"
    (Hexpr.open_ ~rid:1 ~policy:phi (Hexpr.send "req"))
    (parse ~automata:phi_env "open(1: phi({s1},45,100)){ req! }");
  Alcotest.check h_testable "frame"
    (Hexpr.frame phi (Hexpr.ev "x"))
    (parse ~automata:phi_env "phi({s1},45,100)[ #x ]");
  Alcotest.check h_testable "frame close residual"
    (Hexpr.frame_close phi)
    (parse ~automata:phi_env "~phi({s1},45,100)");
  Alcotest.check h_testable "close residual"
    (Hexpr.close ~rid:3 ())
    (parse "close(3)")

let test_parse_unguarded_choice () =
  Alcotest.check h_testable "choice"
    (Hexpr.choice (Hexpr.ev "x") (Hexpr.ev "y"))
    (parse "#x <+> #y")

let test_parse_errors () =
  let fails s =
    match parse ~automata:phi_env s with
    | exception Syntax.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected a parse error on %S" s
  in
  fails "";
  fails "a? + b!";          (* heterogeneous choice *)
  fails "a! (+) a!";        (* duplicate channel *)
  fails "open(x){ eps }";   (* rid must be an integer *)
  fails "zzz({s1},45,100)[ eps ]"; (* unknown policy *)
  fails "phi({s1},45)[ eps ]";     (* arity *)
  fails "a? b?";            (* missing operator *)
  fails "mu . a?"           (* missing binder *)

let test_parse_spec () =
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  Alcotest.(check int) "one automaton" 1 (List.length spec.Syntax.Spec.automata);
  Alcotest.(check int) "five services" 5 (List.length spec.Syntax.Spec.services);
  Alcotest.(check int) "two clients" 2 (List.length spec.Syntax.Spec.clients);
  Alcotest.(check int) "two plans" 2 (List.length spec.Syntax.Spec.plans);
  (* the parsed scenario is the programmatic scenario *)
  Alcotest.check h_testable "broker" Scenarios.Hotel.broker
    (Option.get (List.assoc_opt "br" spec.Syntax.Spec.services));
  Alcotest.check h_testable "s2" Scenarios.Hotel.s2
    (Option.get (List.assoc_opt "s2" spec.Syntax.Spec.services));
  Alcotest.check h_testable "c1" Scenarios.Hotel.client1
    (Option.get (Syntax.Spec.find_client spec "c1"));
  Alcotest.check h_testable "c2" Scenarios.Hotel.client2
    (Option.get (Syntax.Spec.find_client spec "c2"));
  Alcotest.(check bool) "pi1" true
    (Plan.equal Scenarios.Hotel.plan1 (Option.get (Syntax.Spec.find_plan spec "pi1")))

let test_parsed_spec_verifies () =
  (* the whole pipeline from source text: parse, plan, check *)
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  let repo = Syntax.Spec.repo spec in
  let c1 = Option.get (Syntax.Spec.find_client spec "c1") in
  let pi1 = Option.get (Syntax.Spec.find_plan spec "pi1") in
  match Netcheck.check_client repo pi1 ("c1", c1) with
  | Netcheck.Valid _ -> ()
  | Netcheck.Invalid s -> Alcotest.failf "unexpected: %a" Netcheck.pp_stuck s

let test_parse_guard_forms () =
  let src =
    {|
policy g(p) {
  start a;
  offending bad;
  a -- e(x) when x = 3 or (x > 5 and not x >= 9) --> bad;
}
service s = #e(3);
|}
  in
  let spec = Syntax.Parser.spec_of_string src in
  let aut = Option.get (Syntax.Spec.find_automaton spec "g") in
  let pol = Usage.Usage_automaton.instantiate aut [ Usage.Value.int 0 ] in
  let e n = Usage.Event.make ~arg:(Usage.Value.int n) "e" in
  Alcotest.(check bool) "3 violates" false (Usage.Policy.respects pol [ e 3 ]);
  Alcotest.(check bool) "6 violates" false (Usage.Policy.respects pol [ e 6 ]);
  Alcotest.(check bool) "9 ok" true (Usage.Policy.respects pol [ e 9 ]);
  Alcotest.(check bool) "4 ok" true (Usage.Policy.respects pol [ e 4 ])

(* --- λ-calculus programs --- *)

let parse_term ?automata s = Syntax.Parser.term_of_string ?automata s

let test_lambda_atoms () =
  Alcotest.(check bool) "unit" true (parse_term "()" = Lambda_sec.Ast.Unit);
  Alcotest.(check bool) "int" true (parse_term "42" = Lambda_sec.Ast.Int 42);
  Alcotest.(check bool) "bool" true (parse_term "true" = Lambda_sec.Ast.Bool true);
  Alcotest.(check bool) "var" true (parse_term "x" = Lambda_sec.Ast.Var "x");
  (match parse_term "#sgn(s1)" with
  | Lambda_sec.Ast.Event e ->
      Alcotest.(check string) "event name" "sgn" e.Usage.Event.name
  | _ -> Alcotest.fail "expected an event");
  match parse_term "send req" with
  | Lambda_sec.Ast.Send "req" -> ()
  | _ -> Alcotest.fail "expected a send"

let test_lambda_structures () =
  (match parse_term "fun (x : int) -> x" with
  | Lambda_sec.Ast.Fun { self = None; param = "x"; param_ty = Lambda_sec.Ast.TInt; _ } -> ()
  | _ -> Alcotest.fail "expected a function");
  (match parse_term "rec f (x : unit) : unit -> f x" with
  | Lambda_sec.Ast.Fun { self = Some "f"; ret_ty = Some Lambda_sec.Ast.TUnit; _ } -> ()
  | _ -> Alcotest.fail "expected a recursive function");
  (match parse_term "let y = 1 in y == 1" with
  | Lambda_sec.Ast.Let ("y", Lambda_sec.Ast.Int 1, Lambda_sec.Ast.Eq _) -> ()
  | _ -> Alcotest.fail "expected a let of an equality");
  (match parse_term "if true then send a else send b" with
  | Lambda_sec.Ast.If (_, Lambda_sec.Ast.Send "a", Lambda_sec.Ast.Send "b") -> ()
  | _ -> Alcotest.fail "expected an if");
  (match parse_term "recv { a -> () | b -> send c }" with
  | Lambda_sec.Ast.Recv [ ("a", _); ("b", _) ] -> ()
  | _ -> Alcotest.fail "expected handlers");
  match parse_term "f x y" with
  | Lambda_sec.Ast.App (Lambda_sec.Ast.App (Lambda_sec.Ast.Var "f", _), _) -> ()
  | _ -> Alcotest.fail "application is left-associative"

let test_lambda_blocks () =
  match parse_term "{ #x; #y; () }" with
  | Lambda_sec.Ast.Let ("_", Lambda_sec.Ast.Event _, Lambda_sec.Ast.Let ("_", Lambda_sec.Ast.Event _, Lambda_sec.Ast.Unit)) -> ()
  | _ -> Alcotest.fail "expected sequencing sugar"

let test_lambda_session () =
  let t =
    parse_term ~automata:phi_env
      "req(1: phi({s1},45,100)){ send req; recv { cobo -> send pay | noav -> () } }"
  in
  match Lambda_sec.Infer.infer [] t with
  | Ok (_, eff) ->
      Alcotest.check h_testable "inferred C1" Scenarios.Hotel.client1
        (Hexpr.normalize eff)
  | Error e -> Alcotest.failf "inference failed: %a" Lambda_sec.Infer.pp_error e

let test_lambda_spec_programs () =
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  Alcotest.(check int) "two programs" 2 (List.length spec.Syntax.Spec.programs);
  let order = Option.get (Syntax.Spec.find_program spec "order") in
  (match Lambda_sec.Infer.infer [] order with
  | Ok (_, eff) ->
      Alcotest.check h_testable "order's effect is C1" Scenarios.Hotel.client1
        (Hexpr.normalize eff)
  | Error _ -> Alcotest.fail "order must type");
  let hotel3 = Option.get (Syntax.Spec.find_program spec "hotel3") in
  match Lambda_sec.Infer.infer [] hotel3 with
  | Ok (_, eff) ->
      Alcotest.check h_testable "hotel3's effect is S3" Scenarios.Hotel.s3
        (Hexpr.normalize eff)
  | Error e -> Alcotest.failf "hotel3 must type: %a" Lambda_sec.Infer.pp_error e

let test_lambda_errors () =
  let fails s =
    match parse_term ~automata:phi_env s with
    | exception Syntax.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected a parse error on %S" s
  in
  fails "fun x -> x";            (* missing annotation parens *)
  fails "rec f (x : unit) -> x"; (* missing return type *)
  fails "recv { }";              (* empty handlers *)
  fails "let x = 1";             (* missing in *)
  fails "req(x){ () }"           (* rid must be an int *)

(* round trip: parse (pp h) = normalize h *)
let prop_roundtrip =
  QCheck.Test.make ~name:"parse . pp = normalize" ~count:300
    Testkit.Generators.hexpr_arb (fun h ->
      (* the generator's policies are parameterless; expose them *)
      let automata =
        [
          ("never_z", Usage.Policy_lib.never "z");
          ("never_y_after_x", Usage.Policy_lib.never_after ~first:"x" ~then_:"y");
          ("at_most_2_x", Usage.Policy_lib.at_most ~n:2 "x");
          ("z_requires_x", Usage.Policy_lib.requires_before ~before:"x" ~target:"z");
        ]
      in
      let printed = Hexpr.to_string h in
      match Syntax.Parser.hexpr_of_string ~automata printed with
      | parsed -> Hexpr.equal (Hexpr.normalize h) parsed
      | exception Syntax.Parser.Error (msg, l, c) ->
          QCheck.Test.fail_reportf "parse error on %S: %s at %d:%d" printed msg
            l c)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer errors" `Quick test_lexer_error;
    Alcotest.test_case "atoms" `Quick test_parse_atoms;
    Alcotest.test_case "choices" `Quick test_parse_choices;
    Alcotest.test_case "sequences and recursion" `Quick test_parse_seq_mu;
    Alcotest.test_case "sessions and framings" `Quick test_parse_sessions;
    Alcotest.test_case "unguarded choice" `Quick test_parse_unguarded_choice;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "hotel.susf" `Quick test_parse_spec;
    Alcotest.test_case "parsed spec verifies" `Quick test_parsed_spec_verifies;
    Alcotest.test_case "guard forms" `Quick test_parse_guard_forms;
    Alcotest.test_case "λ atoms" `Quick test_lambda_atoms;
    Alcotest.test_case "λ structures" `Quick test_lambda_structures;
    Alcotest.test_case "λ blocks" `Quick test_lambda_blocks;
    Alcotest.test_case "λ sessions infer C1" `Quick test_lambda_session;
    Alcotest.test_case "λ programs in hotel.susf" `Quick test_lambda_spec_programs;
    Alcotest.test_case "λ parse errors" `Quick test_lambda_errors;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]

(* --- spec round trip: parse ∘ to_susf = identity --- *)

let test_spec_roundtrip () =
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  let printed = Fmt.str "%a" Syntax.Spec.to_susf spec in
  let spec2 =
    try Syntax.Parser.spec_of_string printed
    with Syntax.Parser.Error (m, l, c) ->
      Alcotest.failf "reparse failed at %d:%d: %s@.%s" l c m printed
  in
  Alcotest.(check int) "same automata" (List.length spec.Syntax.Spec.automata)
    (List.length spec2.Syntax.Spec.automata);
  List.iter
    (fun (n, h) ->
      Alcotest.check h_testable ("service " ^ n) h
        (Option.get (List.assoc_opt n spec2.Syntax.Spec.services)))
    spec.Syntax.Spec.services;
  List.iter
    (fun (n, h) ->
      Alcotest.check h_testable ("client " ^ n) h
        (Option.get (Syntax.Spec.find_client spec2 n)))
    spec.Syntax.Spec.clients;
  List.iter
    (fun (n, p) ->
      Alcotest.(check bool) ("plan " ^ n) true
        (Plan.equal p (Option.get (Syntax.Spec.find_plan spec2 n))))
    spec.Syntax.Spec.plans;
  List.iter
    (fun (n, t) ->
      Alcotest.(check bool) ("program " ^ n) true
        (Option.get (Syntax.Spec.find_program spec2 n) = t))
    spec.Syntax.Spec.programs;
  (* and the reprint of the reparse is a fixed point *)
  Alcotest.(check string) "printing is a fixed point" printed
    (Fmt.str "%a" Syntax.Spec.to_susf spec2)

let suite =
  suite
  @ [ Alcotest.test_case "spec round trip" `Quick test_spec_roundtrip ]

(* --- regex policies and conjunction in references --- *)

let test_forbid_policy_decl () =
  let spec =
    Syntax.Parser.spec_of_string
      {|
policy no_rw() = forbid #read #write;
service s = go?.(#read . #write . done_!);
client c = open(1: no_rw()){ go!.done_? };
plan p = { 1 -> s };
|}
  in
  let c = Option.get (Syntax.Spec.find_client spec "c") in
  match
    Planner.(analyze (Syntax.Spec.repo spec) ~client:("c", c)
               (Option.get (Syntax.Spec.find_plan spec "p")))
      .verdict
  with
  | Error (Planner.Insecure _) -> ()
  | _ -> Alcotest.fail "the regex policy must block the write"

let test_forbid_policy_guarded () =
  let spec =
    Syntax.Parser.spec_of_string
      {|
policy cap(limit) = forbid #charge when x > limit;
service s = go?.(#charge(80) . done_!);
client cheap = open(1: cap(100)){ go!.done_? };
client strict = open(2: cap(50)){ go!.done_? };
plan p1 = { 1 -> s };
plan p2 = { 2 -> s };
|}
  in
  let repo = Syntax.Spec.repo spec in
  let run name plan =
    Planner.(analyze repo
               ~client:(name, Option.get (Syntax.Spec.find_client spec name))
               (Option.get (Syntax.Spec.find_plan spec plan)))
      .verdict
  in
  Alcotest.(check bool) "within limit" true (Result.is_ok (run "cheap" "p1"));
  Alcotest.(check bool) "over limit" true (Result.is_error (run "strict" "p2"))

let test_forbid_alternation_star () =
  let spec =
    Syntax.Parser.spec_of_string
      {|
policy guard() = forbid (#a | #b) (#skip)* #c;
service s = eps;
|}
  in
  let aut = Option.get (Syntax.Spec.find_automaton spec "guard") in
  let p = Usage.Usage_automaton.instantiate aut [] in
  let e n = Usage.Event.make n in
  Alcotest.(check bool) "a skip skip c violates" false
    (Usage.Policy.respects p [ e "a"; e "skip"; e "skip"; e "c" ]);
  Alcotest.(check bool) "b c violates" false
    (Usage.Policy.respects p [ e "b"; e "c" ]);
  Alcotest.(check bool) "c alone fine" true (Usage.Policy.respects p [ e "c" ])

let test_policy_conjunction_ref () =
  let spec =
    Syntax.Parser.spec_of_string
      {|
policy no_x() = forbid #x;
policy cap(limit) = forbid #charge when x > limit;
service s = go?.(#charge(80) . done_!);
service bad = go?.(#x . done_!);
client c = open(1: no_x() & cap(100)){ go!.done_? };
plan p = { 1 -> s };
plan pb = { 1 -> bad };
|}
  in
  let repo = Syntax.Spec.repo spec in
  let c = Option.get (Syntax.Spec.find_client spec "c") in
  let verdict plan =
    Planner.(analyze repo ~client:("c", c)
               (Option.get (Syntax.Spec.find_plan spec plan)))
      .verdict
  in
  Alcotest.(check bool) "both conjuncts satisfied" true
    (Result.is_ok (verdict "p"));
  Alcotest.(check bool) "left conjunct enforced" true
    (Result.is_error (verdict "pb"));
  (* the client's policy really is the conjunction *)
  match Hexpr.policies c with
  | [ p ] ->
      Alcotest.(check string) "conj id" "(no_x() & cap(100))" (Usage.Policy.id p)
  | _ -> Alcotest.fail "one policy expected"

let test_forbid_nullable_is_error () =
  match
    Syntax.Parser.spec_of_string {|
policy bad() = forbid (#x)*;
|}
  with
  | exception Syntax.Parser.Error _ -> ()
  | _ -> Alcotest.fail "nullable forbid must be rejected"

let suite =
  suite
  @ [
      Alcotest.test_case "forbid declarations" `Quick test_forbid_policy_decl;
      Alcotest.test_case "guarded forbid" `Quick test_forbid_policy_guarded;
      Alcotest.test_case "forbid alternation and star" `Quick
        test_forbid_alternation_star;
      Alcotest.test_case "policy conjunction references" `Quick
        test_policy_conjunction_ref;
      Alcotest.test_case "nullable forbid rejected" `Quick
        test_forbid_nullable_is_error;
    ]

(* --- network declarations (plan vectors) --- *)

let test_network_decl () =
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  match Syntax.Spec.resolve_network spec "both" with
  | Error m -> Alcotest.fail m
  | Ok vector -> (
      Alcotest.(check int) "two clients" 2 (List.length vector);
      match Netcheck.check (Syntax.Spec.repo spec) vector with
      | Netcheck.Valid _ -> ()
      | Netcheck.Invalid s -> Alcotest.failf "unexpected: %a" Netcheck.pp_stuck s)

let test_network_bad_refs () =
  let spec =
    Syntax.Parser.spec_of_string
      {|
client c = open(1){ a! };
plan p = { 1 -> ghost_service };
network n = { c with p, ghost with p };
|}
  in
  (match Syntax.Spec.resolve_network spec "n" with
  | Error msg -> Alcotest.(check string) "ghost client" "unknown client ghost" msg
  | Ok _ -> Alcotest.fail "expected a resolution error");
  let fs = Syntax.Lint.spec spec in
  Alcotest.(check bool) "lint flags it" true
    (List.exists
       (fun f ->
         f.Syntax.Lint.severity = Syntax.Lint.Error
         && String.equal f.Syntax.Lint.subject "network n")
       fs)

let test_network_roundtrip () =
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  let printed = Fmt.str "%a" Syntax.Spec.to_susf spec in
  let spec2 = Syntax.Parser.spec_of_string printed in
  Alcotest.(check int) "networks survive" 1
    (List.length spec2.Syntax.Spec.networks)

let suite =
  suite
  @ [
      Alcotest.test_case "network declarations" `Quick test_network_decl;
      Alcotest.test_case "network bad references" `Quick test_network_bad_refs;
      Alcotest.test_case "network round trip" `Quick test_network_roundtrip;
    ]

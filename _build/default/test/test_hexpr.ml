(* History expressions: smart constructors, substitution,
   well-formedness, normalization, printing. *)

open Core

let h_testable = Alcotest.testable Hexpr.pp Hexpr.equal
let phi = Scenarios.Hotel.phi1

let test_seq_unit () =
  let a = Hexpr.ev "x" in
  Alcotest.check h_testable "eps . H = H" a (Hexpr.seq Hexpr.nil a);
  Alcotest.check h_testable "H . eps = H" a (Hexpr.seq a Hexpr.nil);
  Alcotest.check h_testable "seq_all" a (Hexpr.seq_all [ Hexpr.nil; a; Hexpr.nil ])

let test_seq_right_nested () =
  let e n = Hexpr.ev n in
  let left = Hexpr.seq (Hexpr.seq (e "x") (e "y")) (e "z") in
  let right = Hexpr.seq (e "x") (Hexpr.seq (e "y") (e "z")) in
  Alcotest.check h_testable "reassociation" right left

let test_choice_validation () =
  Alcotest.check_raises "empty branch" (Invalid_argument "Hexpr.branch: empty choice")
    (fun () -> ignore (Hexpr.branch []));
  Alcotest.check_raises "dup channel"
    (Invalid_argument "Hexpr.select: duplicate channel") (fun () ->
      ignore (Hexpr.select [ ("a", Hexpr.nil); ("a", Hexpr.nil) ]))

let test_choice_sorted () =
  let b = Hexpr.branch [ ("b", Hexpr.nil); ("a", Hexpr.nil) ] in
  let b' = Hexpr.branch [ ("a", Hexpr.nil); ("b", Hexpr.nil) ] in
  Alcotest.check h_testable "branches canonically sorted" b' b

let test_mu_collapse () =
  Alcotest.check h_testable "mu h.eps = eps" Hexpr.nil (Hexpr.mu "h" Hexpr.nil);
  let body = Hexpr.ev "x" in
  Alcotest.check h_testable "unused binder elided" body (Hexpr.mu "h" body)

let test_free_vars () =
  let t = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h"); ("b", Hexpr.var "k") ]) in
  Alcotest.(check (list string)) "free vars" [ "k" ] (Hexpr.free_vars t);
  Alcotest.(check bool) "not closed" false (Hexpr.is_closed t);
  Alcotest.(check bool) "closed" true
    (Hexpr.is_closed (Hexpr.mu "h" (Hexpr.recv "a")))

let test_subst () =
  let t = Hexpr.branch [ ("a", Hexpr.var "h") ] in
  let u = Hexpr.subst "h" ~by:(Hexpr.ev "x") t in
  Alcotest.check h_testable "substituted"
    (Hexpr.branch [ ("a", Hexpr.ev "x") ])
    u;
  (* no capture: μk inside must not capture the substituted k *)
  let shadow = Hexpr.mu "k" (Hexpr.branch [ ("a", Hexpr.seq (Hexpr.var "h") (Hexpr.var "k")) ]) in
  let r = Hexpr.subst "h" ~by:(Hexpr.var "k") shadow in
  (* the binder must have been renamed away from k *)
  (match r with
  | Hexpr.Mu (b, _) ->
      Alcotest.(check bool) "binder renamed" true (b <> "k")
  | _ -> Alcotest.fail "expected Mu");
  Alcotest.(check (list string)) "k stays free" [ "k" ] (Hexpr.free_vars r)

let test_unfold () =
  let body = Hexpr.branch [ ("a", Hexpr.var "h"); ("b", Hexpr.nil) ] in
  let once = Hexpr.unfold "h" body in
  Alcotest.check h_testable "unfold replaces var"
    (Hexpr.branch [ ("a", Hexpr.mu "h" body); ("b", Hexpr.nil) ])
    once

let test_requests_policies () =
  let c1 = Scenarios.Hotel.client1 in
  let reqs = Hexpr.requests c1 in
  Alcotest.(check (list int)) "request ids" [ 1 ] (List.map (fun r -> r.Hexpr.rid) reqs);
  Alcotest.(check (list string)) "policies" [ Usage.Policy.id phi ]
    (List.map Usage.Policy.id (Hexpr.policies c1));
  Alcotest.(check (list string)) "broker channels"
    [ "bok"; "cobo"; "idc"; "noav"; "pay"; "req"; "una" ]
    (Hexpr.channels Scenarios.Hotel.broker);
  Alcotest.(check int) "hotel events" 3
    (List.length (Hexpr.events Scenarios.Hotel.s1))

let wf_ok t =
  match Hexpr.well_formed t with
  | Ok () -> true
  | Error _ -> false

let test_wf_positive () =
  Alcotest.(check bool) "nil" true (wf_ok Hexpr.nil);
  Alcotest.(check bool) "client1" true (wf_ok Scenarios.Hotel.client1);
  Alcotest.(check bool) "broker" true (wf_ok Scenarios.Hotel.broker);
  Alcotest.(check bool) "hotels" true (List.for_all (fun (_, h) -> wf_ok h) Scenarios.Hotel.hotels);
  (* μh. a?.h — guarded tail recursion *)
  Alcotest.(check bool) "guarded loop" true
    (wf_ok (Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h") ])));
  (* μh. (a!⊕b!)·…·h with comm in front *)
  Alcotest.(check bool) "loop after comm seq" true
    (wf_ok
       (Hexpr.mu "h"
          (Hexpr.seq
             (Hexpr.select [ ("a", Hexpr.nil); ("b", Hexpr.nil) ])
             (Hexpr.var "h"))))

let test_wf_negative () =
  let err t expected =
    match Hexpr.well_formed t with
    | Ok () -> Alcotest.fail "expected a well-formedness error"
    | Error e -> Alcotest.(check string) "error" expected (Fmt.str "%a" Hexpr.pp_wf_error e)
  in
  err (Hexpr.var "h") "unbound recursion variable h";
  (* μh.h — unguarded *)
  err
    (Hexpr.mu "h" (Hexpr.seq (Hexpr.ev "x") (Hexpr.var "h")))
    "recursion variable h is unguarded";
  (* μh. a?.(h · α) — non-tail *)
  err
    (Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.seq (Hexpr.var "h") (Hexpr.ev "x")) ]))
    "recursion variable h occurs in non-tail position";
  (* μh. a?.φ[h] — close framing would follow: non-tail *)
  err
    (Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.frame phi (Hexpr.var "h")) ]))
    "recursion variable h occurs in non-tail position";
  (* duplicate request ids *)
  err
    (Hexpr.seq (Hexpr.open_ ~rid:1 (Hexpr.recv "a")) (Hexpr.open_ ~rid:1 (Hexpr.recv "b")))
    "request identifier 1 is reused"

let test_normalize () =
  (* (a? . H) normalizes to a?.H *)
  let t = Hexpr.seq (Hexpr.recv "a") (Hexpr.ev "x") in
  Alcotest.check h_testable "prefix absorbed"
    (Hexpr.branch [ ("a", Hexpr.ev "x") ])
    (Hexpr.normalize t);
  (* (a! (+) b!) . K distributes *)
  let t2 =
    Hexpr.seq (Hexpr.select [ ("a", Hexpr.nil); ("b", Hexpr.nil) ]) (Hexpr.ev "x")
  in
  Alcotest.check h_testable "distributed"
    (Hexpr.select [ ("a", Hexpr.ev "x"); ("b", Hexpr.ev "x") ])
    (Hexpr.normalize t2);
  (* events keep the sequence *)
  let t3 = Hexpr.seq (Hexpr.ev "x") (Hexpr.recv "a") in
  Alcotest.check h_testable "events preserved" t3 (Hexpr.normalize t3)

let test_size () =
  Alcotest.(check int) "nil" 1 (Hexpr.size Hexpr.nil);
  Alcotest.(check bool) "client bigger" true (Hexpr.size Scenarios.Hotel.client1 > 5)

let test_pp () =
  Alcotest.(check string) "nil" "eps" (Hexpr.to_string Hexpr.nil);
  Alcotest.(check string) "recv" "a?" (Hexpr.to_string (Hexpr.recv "a"));
  Alcotest.(check string) "send" "a!" (Hexpr.to_string (Hexpr.send "a"));
  Alcotest.(check string) "event" "#sgn(s1)"
    (Hexpr.to_string (Hexpr.ev ~arg:(Usage.Value.str "s1") "sgn"));
  Alcotest.(check string) "ext" "(a? + b?)"
    (Hexpr.to_string (Hexpr.branch [ ("a", Hexpr.nil); ("b", Hexpr.nil) ]));
  Alcotest.(check string) "int" "(a! (+) b!)"
    (Hexpr.to_string (Hexpr.select [ ("a", Hexpr.nil); ("b", Hexpr.nil) ]))

(* properties *)

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize is idempotent" ~count:300 Testkit.Generators.hexpr_arb
    (fun h -> Hexpr.equal (Hexpr.normalize h) (Hexpr.normalize (Hexpr.normalize h)))

let prop_normalize_preserves_wf =
  QCheck.Test.make ~name:"generated hexprs are well-formed" ~count:300
    Testkit.Generators.hexpr_arb (fun h ->
      match Hexpr.well_formed h with Ok () -> true | Error _ -> false)

let prop_compare_total =
  QCheck.Test.make ~name:"compare is a total order" ~count:300
    (QCheck.pair Testkit.Generators.hexpr_arb Testkit.Generators.hexpr_arb) (fun (a, b) ->
      let c1 = Hexpr.compare a b and c2 = Hexpr.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let suite =
  [
    Alcotest.test_case "seq unit laws" `Quick test_seq_unit;
    Alcotest.test_case "seq right-nesting" `Quick test_seq_right_nested;
    Alcotest.test_case "choice validation" `Quick test_choice_validation;
    Alcotest.test_case "choice sorting" `Quick test_choice_sorted;
    Alcotest.test_case "mu collapse" `Quick test_mu_collapse;
    Alcotest.test_case "free variables" `Quick test_free_vars;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "unfold" `Quick test_unfold;
    Alcotest.test_case "requests and policies" `Quick test_requests_policies;
    Alcotest.test_case "well-formed (positive)" `Quick test_wf_positive;
    Alcotest.test_case "well-formed (negative)" `Quick test_wf_negative;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_normalize_preserves_wf;
    QCheck_alcotest.to_alcotest prop_compare_total;
  ]

(* Bisimilarity: sanity cases, and the semantics-preservation of the
   library's transformations (normalize, unfolding, parsing). *)

open Core

let never_z = List.nth Testkit.Generators.policy_pool 0

let test_strong_basic () =
  let a = Hexpr.recv "a" in
  Alcotest.(check bool) "reflexive" true (Bisim.hexpr_strong a a);
  Alcotest.(check bool) "distinct channels differ" false
    (Bisim.hexpr_strong (Hexpr.recv "a") (Hexpr.recv "b"));
  Alcotest.(check bool) "direction matters" false
    (Bisim.hexpr_strong (Hexpr.recv "a") (Hexpr.send "a"));
  Alcotest.(check bool) "eps vs prefixed" false
    (Bisim.hexpr_strong Hexpr.nil (Hexpr.recv "a"))

let test_strong_unfold () =
  (* μh.a?.h ~ a?.μh.a?.h (one unfolding) *)
  let loop = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h") ]) in
  let unfolded = Hexpr.branch [ ("a", loop) ] in
  Alcotest.(check bool) "unfolding is bisimilar" true
    (Bisim.hexpr_strong loop unfolded)

let test_strong_seq_assoc () =
  let e n = Hexpr.ev n in
  (* the smart constructor right-nests, but even a manual embedding of a
     prefixed form is bisimilar to the sequenced one *)
  let prefix_form = Hexpr.branch [ ("a", e "x") ] in
  let seq_form = Hexpr.seq (Hexpr.recv "a") (e "x") in
  Alcotest.(check bool) "prefix = seq" true
    (Bisim.hexpr_strong prefix_form seq_form)

let test_frame_not_transparent () =
  (* framing introduces observable Lφ/Mφ actions *)
  let plain = Hexpr.ev "x" in
  let framed = Hexpr.frame never_z (Hexpr.ev "x") in
  Alcotest.(check bool) "framing is observable" false
    (Bisim.hexpr_strong plain framed)

let test_weak_choice () =
  (* (a?.x <+> a? . x) ≈ a?.x weakly — the branches are structurally
     distinct but behaviourally identical, and the τ commit is
     abstracted — yet not strongly bisimilar (the τ is visible). *)
  let target = Hexpr.branch [ ("a", Hexpr.ev "x") ] in
  let c =
    Hexpr.choice
      (Hexpr.branch [ ("a", Hexpr.ev "x") ])
      (Hexpr.seq (Hexpr.recv "a") (Hexpr.ev "x"))
  in
  (match (c : Hexpr.t) with
  | Hexpr.Choice _ -> ()
  | _ -> Alcotest.fail "expected the choice to survive");
  Alcotest.(check bool) "weakly equal" true (Bisim.hexpr_weak c target);
  Alcotest.(check bool) "not strongly" false (Bisim.hexpr_strong c target)

let test_weak_committed_choice () =
  (* a <+> b is NOT weakly bisimilar to a + b: the commit discards the
     other branch (this is exactly internal vs external choice) *)
  let internal = Hexpr.choice (Hexpr.recv "a") (Hexpr.recv "b") in
  let external_ = Hexpr.branch [ ("a", Hexpr.nil); ("b", Hexpr.nil) ] in
  Alcotest.(check bool) "committed choice differs" false
    (Bisim.hexpr_weak internal external_)

let test_contract_bisim () =
  let c1 = Contract.select [ ("a", Contract.recv "b") ] in
  let c2 = Contract.seq (Contract.send "a") (Contract.recv "b") in
  Alcotest.(check bool) "contract prefix = seq" true
    (Bisim.contract_strong c1 c2);
  Alcotest.(check bool) "weak = strong without tau" true
    (Bisim.contract_weak c1 c2)

(* properties *)

let prop_normalize_bisimilar =
  QCheck.Test.make ~name:"normalize is strongly bisimilar" ~count:200
    Testkit.Generators.hexpr_arb (fun h ->
      Bisim.hexpr_strong h (Hexpr.normalize h))

let prop_parse_pp_bisimilar =
  QCheck.Test.make ~name:"parse∘pp is strongly bisimilar" ~count:150
    Testkit.Generators.hexpr_arb (fun h ->
      let automata =
        [
          ("never_z", Usage.Policy_lib.never "z");
          ("never_y_after_x", Usage.Policy_lib.never_after ~first:"x" ~then_:"y");
          ("at_most_2_x", Usage.Policy_lib.at_most ~n:2 "x");
          ("z_requires_x", Usage.Policy_lib.requires_before ~before:"x" ~target:"z");
        ]
      in
      let parsed = Syntax.Parser.hexpr_of_string ~automata (Hexpr.to_string h) in
      Bisim.hexpr_strong h parsed)

let prop_strong_implies_weak =
  QCheck.Test.make ~name:"strong implies weak" ~count:100
    (QCheck.pair Testkit.Generators.hexpr_arb Testkit.Generators.hexpr_arb)
    (fun (a, b) ->
      if Bisim.hexpr_strong a b then Bisim.hexpr_weak a b else true)

let prop_bisim_preserves_validity =
  QCheck.Test.make ~name:"strongly bisimilar expressions agree on validity"
    ~count:100
    (QCheck.pair Testkit.Generators.hexpr_arb Testkit.Generators.hexpr_arb)
    (fun (a, b) ->
      QCheck.assume (Bisim.hexpr_strong a b);
      Result.is_ok (Validity.check_expr a) = Result.is_ok (Validity.check_expr b))

let prop_bisimilar_contracts_same_compliance =
  QCheck.Test.make
    ~name:"bisimilar servers serve the same clients" ~count:100
    (QCheck.triple Testkit.Generators.contract_arb Testkit.Generators.contract_arb
       Testkit.Generators.contract_arb)
    (fun (client, s1, s2) ->
      QCheck.assume (Bisim.contract_strong s1 s2);
      Product.compliant client s1 = Product.compliant client s2)

let suite =
  [
    Alcotest.test_case "strong basics" `Quick test_strong_basic;
    Alcotest.test_case "unfolding" `Quick test_strong_unfold;
    Alcotest.test_case "prefix vs sequence" `Quick test_strong_seq_assoc;
    Alcotest.test_case "framing observable" `Quick test_frame_not_transparent;
    Alcotest.test_case "weak choice" `Quick test_weak_choice;
    Alcotest.test_case "committed vs external choice" `Quick test_weak_committed_choice;
    Alcotest.test_case "contracts" `Quick test_contract_bisim;
    QCheck_alcotest.to_alcotest prop_normalize_bisimilar;
    QCheck_alcotest.to_alcotest prop_parse_pp_bisimilar;
    QCheck_alcotest.to_alcotest prop_strong_implies_weak;
    QCheck_alcotest.to_alcotest prop_bisim_preserves_validity;
    QCheck_alcotest.to_alcotest prop_bisimilar_contracts_same_compliance;
  ]

(* --- simulation preorder --- *)

let test_simulation () =
  let a = Hexpr.recv "a" in
  let ab = Hexpr.branch [ ("a", Hexpr.nil); ("b", Hexpr.nil) ] in
  Alcotest.(check bool) "smaller simulated by larger" true
    (Bisim.hexpr_simulates a ab);
  Alcotest.(check bool) "not conversely" false (Bisim.hexpr_simulates ab a);
  (* loops simulate their unrollings *)
  let loop = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h") ]) in
  let twice = Hexpr.branch [ ("a", Hexpr.branch [ ("a", Hexpr.nil) ]) ] in
  Alcotest.(check bool) "finite below infinite" true
    (Bisim.hexpr_simulates twice loop);
  Alcotest.(check bool) "infinite not below finite" false
    (Bisim.hexpr_simulates loop twice)

let prop_bisim_implies_mutual_simulation =
  QCheck.Test.make ~name:"bisimilar implies mutual simulation" ~count:150
    (QCheck.pair Testkit.Generators.contract_arb Testkit.Generators.contract_arb)
    (fun (a, b) ->
      QCheck.assume (Bisim.contract_strong a b);
      Bisim.contract_simulates a b && Bisim.contract_simulates b a)

let prop_simulation_preorder =
  QCheck.Test.make ~name:"simulation is a preorder" ~count:100
    (QCheck.triple Testkit.Generators.contract_arb Testkit.Generators.contract_arb
       Testkit.Generators.contract_arb)
    (fun (a, b, c) ->
      Bisim.contract_simulates a a
      &&
      if Bisim.contract_simulates a b && Bisim.contract_simulates b c then
        Bisim.contract_simulates a c
      else true)

let suite =
  suite
  @ [
      Alcotest.test_case "simulation preorder" `Quick test_simulation;
      QCheck_alcotest.to_alcotest prop_bisim_implies_mutual_simulation;
      QCheck_alcotest.to_alcotest prop_simulation_preorder;
    ]

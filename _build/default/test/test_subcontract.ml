(* The subcontract preorder and its soundness for substitutability. *)

open Core

let recv = Contract.recv
let send = Contract.send

let test_basics () =
  Alcotest.(check bool) "reflexive" true (Subcontract.refines (recv "a") (recv "a"));
  (* a server may gain inputs *)
  Alcotest.(check bool) "wider external choice" true
    (Subcontract.refines (recv "a")
       (Contract.branch [ ("a", Contract.nil); ("b", Contract.nil) ]));
  (* but not lose them *)
  Alcotest.(check bool) "narrower external choice" false
    (Subcontract.refines
       (Contract.branch [ ("a", Contract.nil); ("b", Contract.nil) ])
       (recv "a"));
  (* a server may choose among fewer outputs *)
  Alcotest.(check bool) "narrower internal choice" true
    (Subcontract.refines
       (Contract.select [ ("a", Contract.nil); ("b", Contract.nil) ])
       (send "a"));
  (* but not add new ones *)
  Alcotest.(check bool) "wider internal choice" false
    (Subcontract.refines (send "a")
       (Contract.select [ ("a", Contract.nil); ("b", Contract.nil) ]));
  (* terminated refines everything *)
  Alcotest.(check bool) "eps bottom" true (Subcontract.refines Contract.nil (recv "a"));
  (* direction cannot flip *)
  Alcotest.(check bool) "in vs out" false (Subcontract.refines (recv "a") (send "a"));
  (* a live server cannot be replaced by a terminated one *)
  Alcotest.(check bool) "not by eps" false (Subcontract.refines (send "a") Contract.nil)

let test_deep () =
  let s1 = Contract.branch [ ("a", Contract.select [ ("x", Contract.nil) ]) ] in
  let s2 =
    Contract.branch
      [
        ("a", Contract.select [ ("x", Contract.nil) ]);
        ("b", Contract.nil);
      ]
  in
  Alcotest.(check bool) "nested refinement" true (Subcontract.refines s1 s2);
  let s3 =
    Contract.branch
      [ ("a", Contract.select [ ("x", Contract.nil); ("y", Contract.nil) ]) ]
  in
  (* continuation widens its internal choice: not a refinement *)
  Alcotest.(check bool) "bad continuation" false (Subcontract.refines s1 s3);
  (* but the converse is: s3's clients handle x and y, s1 only sends x *)
  Alcotest.(check bool) "converse holds" true (Subcontract.refines s3 s1)

let test_recursive () =
  let loop = Contract.mu "h" (Contract.branch [ ("a", Contract.var "h") ]) in
  let wider =
    Contract.mu "h"
      (Contract.branch [ ("a", Contract.var "h"); ("b", Contract.nil) ])
  in
  Alcotest.(check bool) "recursive reflexivity" true (Subcontract.refines loop loop);
  Alcotest.(check bool) "recursive widening" true (Subcontract.refines loop wider);
  Alcotest.(check bool) "recursive narrowing" false (Subcontract.refines wider loop)

let test_hotel_substitution () =
  (* s2 (with the extra Del) refines s3: anyone served by s2 is served by
     s3 — the converse fails. So a repository may safely swap s2 out. *)
  let s2 = Contract.project Scenarios.Hotel.s2 in
  let s3 = Contract.project Scenarios.Hotel.s3 in
  Alcotest.(check bool) "s2 ⊑ s3" true (Subcontract.refines s2 s3);
  Alcotest.(check bool) "s3 ⋢ s2" false (Subcontract.refines s3 s2);
  let widest =
    Subcontract.widest_servers
      (List.map (fun (l, h) -> (l, Contract.project h)) Scenarios.Hotel.hotels)
      s2
  in
  Alcotest.(check (list string)) "substitutes for s2"
    [ "s1"; "s2"; "s3"; "s4" ]
    (List.sort compare (List.map fst widest))

let test_equivalent () =
  let s3 = Contract.project Scenarios.Hotel.s3 in
  let s4 = Contract.project Scenarios.Hotel.s4 in
  (* the hotels' contracts coincide after projection *)
  Alcotest.(check bool) "s3 ≃ s4 as contracts" true (Subcontract.equivalent s3 s4)

(* Soundness: refines s s' ∧ c ⊢ s ⇒ c ⊢ s'. *)
let prop_soundness =
  QCheck.Test.make ~name:"subcontract soundness (substitutability)" ~count:500
    (QCheck.triple Testkit.Generators.contract_arb Testkit.Generators.contract_arb
       Testkit.Generators.contract_arb)
    (fun (client, s, s') ->
      if Subcontract.refines s s' && Product.compliant client s then
        Product.compliant client s'
      else true)

let prop_preorder =
  QCheck.Test.make ~name:"subcontract is a preorder" ~count:200
    (QCheck.triple Testkit.Generators.contract_arb Testkit.Generators.contract_arb
       Testkit.Generators.contract_arb)
    (fun (a, b, c) ->
      let transitive =
        if Subcontract.refines a b && Subcontract.refines b c then
          Subcontract.refines a c
        else true
      in
      Subcontract.refines a a && transitive)

let prop_bisim_implies_equiv =
  QCheck.Test.make ~name:"bisimilar contracts are subcontract-equivalent"
    ~count:150
    (QCheck.pair Testkit.Generators.contract_arb Testkit.Generators.contract_arb)
    (fun (a, b) ->
      QCheck.assume (Bisim.contract_strong a b);
      Subcontract.equivalent a b)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "nested" `Quick test_deep;
    Alcotest.test_case "recursive" `Quick test_recursive;
    Alcotest.test_case "hotel substitution" `Quick test_hotel_substitution;
    Alcotest.test_case "equivalence" `Quick test_equivalent;
    QCheck_alcotest.to_alcotest prop_soundness;
    QCheck_alcotest.to_alcotest prop_preorder;
    QCheck_alcotest.to_alcotest prop_bisim_implies_equiv;
  ]

test/test_validity.ml: Alcotest Core Hexpr History List QCheck QCheck_alcotest Result Testkit Usage Validity

test/test_discovery.ml: Alcotest Contract Core Discovery Hexpr List Netcheck Plan Planner Product QCheck QCheck_alcotest Result Scenarios String Subcontract Testkit Usage

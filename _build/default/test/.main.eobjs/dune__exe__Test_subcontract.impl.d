test/test_subcontract.ml: Alcotest Bisim Contract Core List Product QCheck QCheck_alcotest Scenarios Subcontract Testkit

test/test_audit.ml: Alcotest Core Fmt List Scenarios String Syntax Usage

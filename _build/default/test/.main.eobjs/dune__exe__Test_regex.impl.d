test/test_regex.ml: Alcotest Automata Char Dump Fmt List QCheck QCheck_alcotest String Testkit Usage

test/test_compliance.ml: Alcotest Compliance Contract Core List Product QCheck QCheck_alcotest Scenarios Set Testkit

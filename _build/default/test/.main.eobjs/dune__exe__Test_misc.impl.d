test/test_misc.ml: Action Alcotest Core Fmt Hexpr History List Network Plan Planner Scenarios Simulate Testkit Usage Validity

test/test_automata.ml: Alcotest Automata Char Dump Fmt Gen List QCheck QCheck_alcotest Testkit

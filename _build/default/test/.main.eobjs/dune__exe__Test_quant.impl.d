test/test_quant.ml: Alcotest Core Float Hexpr List Option Plan QCheck QCheck_alcotest Quant Scenarios Testkit Usage

test/test_msc.ml: Alcotest Core Fmt Msc Network Scenarios Simulate String

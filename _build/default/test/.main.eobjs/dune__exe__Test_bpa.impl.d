test/test_bpa.ml: Alcotest Bpa Core Hexpr List QCheck QCheck_alcotest Result String Testkit Usage Validity

test/test_syntax.ml: Alcotest Core Fmt Hexpr Lambda_sec List Netcheck Option Plan Planner QCheck QCheck_alcotest Result Scenarios String Syntax Testkit Usage

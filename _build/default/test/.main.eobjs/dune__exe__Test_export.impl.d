test/test_export.ml: Alcotest Contract Core Export Fmt Network Plan Scenarios Simulate String

test/test_lambda.ml: Alcotest Ast Core Effect Eval Infer Lambda_sec List QCheck QCheck_alcotest Result Scenarios Syntax Testkit Usage

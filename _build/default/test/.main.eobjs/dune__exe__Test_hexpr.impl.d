test/test_hexpr.ml: Alcotest Core Fmt Hexpr List QCheck QCheck_alcotest Scenarios Testkit Usage

test/test_bisim.ml: Alcotest Bisim Contract Core Hexpr List Product QCheck QCheck_alcotest Result Syntax Testkit Usage Validity

test/test_corpus.ml: Alcotest Array Bpa Core Filename Hexpr Lambda_sec List Planner Printf Result String Syntax Sys Validity

test/test_usage.ml: Alcotest QCheck QCheck_alcotest Scenarios Testkit Usage

test/test_scenarios.ml: Alcotest Cloud Core Ecommerce Hexpr History List Mesh Netcheck Network Plan Planner Quant Scenarios Simulate Usage Validity

test/test_contract.ml: Alcotest Compliance Contract Core Dump Fmt Hexpr List Product QCheck QCheck_alcotest Ready Scenarios Testkit

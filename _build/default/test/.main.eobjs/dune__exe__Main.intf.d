test/main.mli:

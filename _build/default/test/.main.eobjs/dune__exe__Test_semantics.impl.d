test/test_semantics.ml: Action Alcotest Core Hexpr List QCheck QCheck_alcotest Scenarios Semantics Testkit Usage

test/test_network.ml: Alcotest Core Fmt Hexpr History List Network Plan Scenarios Simulate String Usage Validity

test/test_laws.ml: Alcotest Bisim Contract Core Hexpr List Product QCheck QCheck_alcotest Result Testkit Validity

test/test_reports.ml: Alcotest Astring Core Encode Json List Reports Scenarios

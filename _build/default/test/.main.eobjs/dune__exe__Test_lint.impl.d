test/test_lint.ml: Alcotest List String Syntax

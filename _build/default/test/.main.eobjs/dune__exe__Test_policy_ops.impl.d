test/test_policy_ops.ml: Alcotest Core Event Fmt List QCheck QCheck_alcotest Scenarios String Testkit Usage Value

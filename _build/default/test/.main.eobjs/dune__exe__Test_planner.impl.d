test/test_planner.ml: Alcotest Core Dump Fmt Hexpr History List Netcheck Network Plan Planner QCheck QCheck_alcotest Result Scenarios Simulate Usage Validity

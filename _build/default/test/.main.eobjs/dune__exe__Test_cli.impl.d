test/test_cli.ml: Alcotest Filename String Sys

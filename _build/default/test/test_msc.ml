(* Message sequence charts. *)

open Core

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fig3_trace () =
  let cfg =
    Network.initial ~plan:Scenarios.Hotel.plan1
      [ ("c1", Scenarios.Hotel.client1) ]
  in
  Simulate.run Scenarios.Hotel.repo cfg (Simulate.random ~seed:2)

let test_participants () =
  let msc = Msc.of_trace (fig3_trace ()) in
  Alcotest.(check (list string)) "in order of appearance" [ "c1"; "br"; "s3" ]
    (Msc.participants msc)

let test_mermaid () =
  let out = Fmt.str "%a" Msc.pp_mermaid (Msc.of_trace (fig3_trace ())) in
  Alcotest.(check bool) "header" true (contains out "sequenceDiagram");
  Alcotest.(check bool) "open activates" true (contains out "c1->>+br: open 1");
  Alcotest.(check bool) "nested session" true (contains out "br->>+s3: open 3");
  Alcotest.(check bool) "events as notes" true (contains out "Note over s3: sgn(s3)");
  Alcotest.(check bool) "close deactivates the callee" true
    (contains out "br-->>-s3: close 3");
  Alcotest.(check bool) "final close" true (contains out "c1-->>-br: close 1")

let test_message_direction () =
  let out = Fmt.str "%a" Msc.pp_mermaid (Msc.of_trace (fig3_trace ())) in
  (* the client sends the request; the broker forwards the data *)
  Alcotest.(check bool) "c1 sends req" true (contains out "c1->>br: req");
  Alcotest.(check bool) "br sends idc" true (contains out "br->>s3: idc");
  (* the hotel answers *)
  Alcotest.(check bool) "hotel answers" true
    (contains out "s3->>br: bok" || contains out "s3->>br: una")

let test_text_rendering () =
  let out = Fmt.str "%a" Msc.pp_text (Msc.of_trace (fig3_trace ())) in
  Alcotest.(check bool) "participants line" true
    (contains out "participants: c1, br, s3");
  Alcotest.(check bool) "open line" true
    (contains out "c1 opens session 1: phi({s1},45,100) with br");
  Alcotest.(check bool) "send line" true (contains out "c1 sends req to br")

let suite =
  [
    Alcotest.test_case "participants" `Quick test_participants;
    Alcotest.test_case "mermaid rendering" `Quick test_mermaid;
    Alcotest.test_case "message direction" `Quick test_message_direction;
    Alcotest.test_case "text rendering" `Quick test_text_rendering;
  ]

(* The equational theory of history expressions, checked up to strong
   bisimilarity (positive laws) — and the non-laws the paper's
   history-dependent security makes fail (negative checks). *)

open Core

let never_z = List.nth Testkit.Generators.policy_pool 0
let bisim = Bisim.hexpr_strong

let prop name count gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let two = QCheck.pair Testkit.Generators.hexpr_arb Testkit.Generators.hexpr_arb
let three =
  QCheck.triple Testkit.Generators.hexpr_arb Testkit.Generators.hexpr_arb
    Testkit.Generators.hexpr_arb

let law_unit_left =
  prop "ε·H ≡ H" 200 Testkit.Generators.hexpr_arb (fun h ->
      Hexpr.equal (Hexpr.seq Hexpr.nil h) h)

let law_unit_right =
  prop "H·ε ≡ H" 200 Testkit.Generators.hexpr_arb (fun h ->
      Hexpr.equal (Hexpr.seq h Hexpr.nil) h)

let law_seq_assoc =
  prop "(H·H')·H'' ≡ H·(H'·H'') (syntactically, by right-nesting)" 200 three
    (fun (a, b, c) ->
      Hexpr.equal (Hexpr.seq (Hexpr.seq a b) c) (Hexpr.seq a (Hexpr.seq b c)))

let law_choice_comm =
  prop "unguarded choice commutes (weakly)" 100 two (fun (a, b) ->
      Bisim.hexpr_weak (Hexpr.choice a b) (Hexpr.choice b a))

let law_choice_idem =
  prop "H <+> H ≡ H (collapsed by construction)" 200 Testkit.Generators.hexpr_arb
    (fun h -> Hexpr.equal (Hexpr.choice h h) h)

let law_guard_distribution =
  (* (Σ aᵢ.Hᵢ)·K ~ Σ aᵢ.(Hᵢ·K): the normalize direction is sound *)
  prop "choice-prefix distribution is a strong bisimulation" 200 two
    (fun (h, k) -> bisim (Hexpr.seq h k) (Hexpr.seq (Hexpr.normalize h) k))

let law_mu_unfold =
  (* μh.H ~ H{μh.H/h} for the loops our generator builds *)
  prop "μ-unfolding" 150 Testkit.Generators.hexpr_arb (fun h ->
      match (h : Hexpr.t) with
      | Hexpr.Mu (x, body) -> bisim h (Hexpr.unfold x body)
      | _ -> QCheck.assume_fail ())

let test_frame_not_homomorphic () =
  (* φ[H·H'] ≢ φ[H]·φ[H']: the right-hand side closes and reopens the
     framing, so events of H' in between are differently constrained —
     and even as pure LTSs the framing actions differ *)
  let h = Hexpr.ev "x" and k = Hexpr.ev "y" in
  Alcotest.(check bool) "not bisimilar" false
    (bisim
       (Hexpr.frame never_z (Hexpr.seq h k))
       (Hexpr.seq (Hexpr.frame never_z h) (Hexpr.frame never_z k)))

let test_frame_validity_differs () =
  (* …and validity genuinely distinguishes placements: with
     φ = never z after x (never_y_after_x on x,y), compare framing the
     whole of x·y against framing only x *)
  let nyax = List.nth Testkit.Generators.policy_pool 1 in
  (* never y after x *)
  let x = Hexpr.ev "x" and y = Hexpr.ev "y" in
  let whole = Hexpr.frame nyax (Hexpr.seq x y) in
  let only_x = Hexpr.seq (Hexpr.frame nyax x) y in
  Alcotest.(check bool) "whole framing violated" true
    (Result.is_error (Validity.check_expr whole));
  Alcotest.(check bool) "escaped y is fine" true
    (Result.is_ok (Validity.check_expr only_x))

let test_ext_int_not_interchangeable () =
  let e = Hexpr.branch [ ("a", Hexpr.nil); ("b", Hexpr.nil) ] in
  let i = Hexpr.select [ ("a", Hexpr.nil); ("b", Hexpr.nil) ] in
  Alcotest.(check bool) "Σ ≢ ⊕" false (bisim e i)

let law_compliance_not_symmetric () =
  (* client ⊢ server is asymmetric: ε complies with a?, not conversely *)
  Alcotest.(check bool) "eps |- a?" true
    (Product.compliant Contract.nil (Contract.recv "a"));
  Alcotest.(check bool) "a? |/- eps" false
    (Product.compliant (Contract.recv "a") Contract.nil)

let suite =
  [
    law_unit_left;
    law_unit_right;
    law_seq_assoc;
    law_choice_comm;
    law_choice_idem;
    law_guard_distribution;
    law_mu_unfold;
    Alcotest.test_case "framing is not a homomorphism" `Quick
      test_frame_not_homomorphic;
    Alcotest.test_case "framing placement matters for validity" `Quick
      test_frame_validity_differs;
    Alcotest.test_case "Σ and ⊕ differ" `Quick test_ext_int_not_interchangeable;
    Alcotest.test_case "compliance is asymmetric" `Quick
      law_compliance_not_symmetric;
  ]

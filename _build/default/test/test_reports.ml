(* The JSON tree, escaping, and the report encoders. *)

open Reports

let str j = Json.to_string j

let test_scalars () =
  Alcotest.(check string) "null" "null" (str Json.Null);
  Alcotest.(check string) "true" "true" (str (Json.Bool true));
  Alcotest.(check string) "int" "42" (str (Json.Int 42));
  Alcotest.(check string) "float" "1.5" (str (Json.Float 1.5));
  Alcotest.(check string) "integral float" "3.0" (str (Json.Float 3.0));
  Alcotest.(check string) "string" "\"hi\"" (str (Json.String "hi"))

let test_escaping () =
  Alcotest.(check string) "quotes" "\"a\\\"b\"" (str (Json.String "a\"b"));
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (str (Json.String "a\\b"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (str (Json.String "a\nb"));
  Alcotest.(check string) "control" "\"a\\u0001b\"" (str (Json.String "a\001b"))

let test_nesting () =
  let j =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("o", Json.Obj [ ("k", Json.Null) ]);
      ]
  in
  Alcotest.(check string) "nested" "{\"xs\":[1,2],\"o\":{\"k\":null}}" (str j)

let test_planner_report_valid () =
  let r =
    Core.Planner.analyze Scenarios.Hotel.repo
      ~client:("c1", Scenarios.Hotel.client1)
      Scenarios.Hotel.plan1
  in
  match Encode.planner_report r with
  | Json.Obj fields ->
      Alcotest.(check bool) "has plan" true (List.mem_assoc "plan" fields);
      Alcotest.(check bool) "verdict valid" true
        (List.assoc "verdict" fields = Json.String "valid")
  | _ -> Alcotest.fail "expected an object"

let test_planner_report_noncompliant () =
  let r =
    Core.Planner.analyze Scenarios.Hotel.repo
      ~client:("c2", Scenarios.Hotel.client2)
      Scenarios.Hotel.plan2_s2
  in
  let s = str (Encode.planner_report r) in
  Alcotest.(check bool) "marks non-compliance" true
    (Astring.String.is_infix ~affix:"not-compliant" s);
  Alcotest.(check bool) "names the channel" true
    (Astring.String.is_infix ~affix:"del" s)

let test_planner_report_insecure () =
  let r =
    Core.Planner.analyze Scenarios.Hotel.repo
      ~client:("c2", Scenarios.Hotel.client2)
      Scenarios.Hotel.plan2_s3
  in
  let s = str (Encode.planner_report r) in
  Alcotest.(check bool) "marks insecurity" true
    (Astring.String.is_infix ~affix:"insecure" s);
  Alcotest.(check bool) "names the policy" true
    (Astring.String.is_infix ~affix:"phi({s1,s3},40,70)" s)

let test_stats_encoding () =
  let stats =
    Core.Simulate.batch ~runs:5 Scenarios.Hotel.repo (fun () ->
        Core.Network.initial ~plan:Scenarios.Hotel.plan1
          [ ("c1", Scenarios.Hotel.client1) ])
  in
  let s = str (Encode.sim_stats stats) in
  Alcotest.(check bool) "runs recorded" true
    (Astring.String.is_infix ~affix:"\"runs\":5" s)

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "nesting" `Quick test_nesting;
    Alcotest.test_case "planner report (valid)" `Quick test_planner_report_valid;
    Alcotest.test_case "planner report (non-compliant)" `Quick test_planner_report_noncompliant;
    Alcotest.test_case "planner report (insecure)" `Quick test_planner_report_insecure;
    Alcotest.test_case "stats encoding" `Quick test_stats_encoding;
  ]

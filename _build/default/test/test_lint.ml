(* The specification linter. *)

let lint src = Syntax.Lint.spec (Syntax.Parser.spec_of_string src)

let messages fs = List.map (fun f -> f.Syntax.Lint.message) fs

let has_subject fs subject =
  List.exists (fun f -> String.equal f.Syntax.Lint.subject subject) fs

let severities fs = List.map (fun f -> f.Syntax.Lint.severity) fs

let test_clean_spec () =
  let fs =
    lint
      {|
service s = a?.(#x . b!);
client  c = open(1){ a!.b? };
plan    p = { 1 -> s };
|}
  in
  (* only the no-policy info remains *)
  Alcotest.(check (list string)) "only info" [ "request 1 imposes no policy" ]
    (messages fs);
  Alcotest.(check bool) "is info" true
    (severities fs = [ Syntax.Lint.Info ])

let test_hotel_spec () =
  let spec = Syntax.Parser.spec_of_file "../examples/data/hotel.susf" in
  let fs = Syntax.Lint.spec spec in
  (* the broker can never receive s2's del *)
  Alcotest.(check bool) "flags dead del channel" true
    (has_subject fs "channel del");
  Alcotest.(check bool) "no errors" true
    (List.for_all (fun f -> f.Syntax.Lint.severity <> Syntax.Lint.Error) fs)

let test_duplicate_names () =
  let fs = lint {|
service s = a?;
service s = b?;
|} in
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists
       (fun f ->
         f.Syntax.Lint.severity = Syntax.Lint.Error
         && String.equal f.Syntax.Lint.subject "service s")
       fs)

let test_bad_plan () =
  let fs =
    lint {|
client c = open(1){ a! };
plan p = { 1 -> ghost, 9 -> ghost };
|}
  in
  Alcotest.(check bool) "unknown location is an error" true
    (List.exists
       (fun f ->
         f.Syntax.Lint.severity = Syntax.Lint.Error
         && String.equal f.Syntax.Lint.subject "plan p")
       fs);
  Alcotest.(check bool) "unknown request is a warning" true
    (List.exists
       (fun f -> String.equal f.Syntax.Lint.message "request 9 is not opened by any declaration")
       fs)

let test_uncovered_request () =
  let fs = lint {|
service s = a?;
client c = open(7){ a! };
|} in
  Alcotest.(check bool) "uncovered request" true
    (List.exists
       (fun f ->
         String.equal f.Syntax.Lint.message
           "request 7 is not covered by any declared plan")
       fs)

let test_unheard_policy_event () =
  let fs =
    lint
      {|
policy q() {
  start a;
  offending bad;
  a -- launch(x) --> bad;
}
service s = go?.(#ping . ok!);
client c = open(1: q()){ go!.ok? };
plan p = { 1 -> s };
|}
  in
  Alcotest.(check bool) "unheard event" true
    (List.exists
       (fun f ->
         String.equal f.Syntax.Lint.message
           "observes event launch, which nothing in this specification fires")
       fs);
  Alcotest.(check bool) "hence vacuous" true
    (List.exists
       (fun f ->
         String.equal f.Syntax.Lint.message
           "cannot be violated by any event of this specification (vacuous)")
       fs)

let test_errors_first () =
  let fs =
    lint {|
service s = a?;
service s = a?;
client c = open(1){ a! };
|}
  in
  match severities fs with
  | Syntax.Lint.Error :: _ -> ()
  | _ -> Alcotest.fail "errors must sort first"

let suite =
  [
    Alcotest.test_case "clean spec" `Quick test_clean_spec;
    Alcotest.test_case "hotel spec" `Quick test_hotel_spec;
    Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
    Alcotest.test_case "bad plans" `Quick test_bad_plan;
    Alcotest.test_case "uncovered requests" `Quick test_uncovered_request;
    Alcotest.test_case "unheard policy events" `Quick test_unheard_policy_event;
    Alcotest.test_case "errors sort first" `Quick test_errors_first;
  ]

(* Unit and property tests for the generic NFA and the symbolic SFA. *)

module CharAlpha = struct
  type t = char

  let compare = Char.compare
  let pp = Fmt.char
end

module N = Automata.Nfa.Make (CharAlpha)

let word = Alcotest.testable Fmt.(Dump.list char) ( = )

let mk trans finals = N.create ~init:[ 0 ] ~finals ~trans

(* (ab)* ending in a final 0; accepts "", "ab", "abab", … *)
let ab_star = mk [ (0, 'a', 1); (1, 'b', 0) ] [ 0 ]

(* words containing "aa" *)
let contains_aa =
  N.create ~init:[ 0 ]
    ~finals:[ 2 ]
    ~trans:
      [
        (0, 'a', 0); (0, 'b', 0); (0, 'a', 1); (1, 'a', 2);
        (2, 'a', 2); (2, 'b', 2);
      ]

let test_accepts () =
  Alcotest.(check bool) "eps in (ab)*" true (N.accepts ab_star []);
  Alcotest.(check bool) "ab in (ab)*" true (N.accepts ab_star [ 'a'; 'b' ]);
  Alcotest.(check bool) "abab" true (N.accepts ab_star [ 'a'; 'b'; 'a'; 'b' ]);
  Alcotest.(check bool) "a not in" false (N.accepts ab_star [ 'a' ]);
  Alcotest.(check bool) "ba not in" false (N.accepts ab_star [ 'b'; 'a' ]);
  Alcotest.(check bool) "baab has aa" true
    (N.accepts contains_aa [ 'b'; 'a'; 'a'; 'b' ]);
  Alcotest.(check bool) "abab no aa" false
    (N.accepts contains_aa [ 'a'; 'b'; 'a'; 'b' ])

let test_empty_language () =
  Alcotest.(check bool) "no finals" true
    (N.is_language_empty (mk [ (0, 'a', 1) ] []));
  Alcotest.(check bool) "unreachable final" true
    (N.is_language_empty (N.create ~init:[ 0 ] ~finals:[ 9 ] ~trans:[ (0, 'a', 1) ]));
  Alcotest.(check bool) "reachable final" false (N.is_language_empty ab_star)

let test_shortest () =
  Alcotest.(check (option word)) "shortest in (ab)*" (Some []) (N.shortest_accepted ab_star);
  Alcotest.(check (option word))
    "shortest aa" (Some [ 'a'; 'a' ])
    (N.shortest_accepted contains_aa);
  Alcotest.(check (option word)) "none" None
    (N.shortest_accepted (mk [ (0, 'a', 1) ] []))

let test_product () =
  (* (ab)* ∩ contains_aa = ∅ *)
  Alcotest.(check bool) "disjoint" true
    (N.is_language_empty (N.intersect ab_star contains_aa));
  (* contains_aa ∩ contains_aa = itself *)
  Alcotest.(check bool) "self product accepts aa" true
    (N.accepts (N.intersect contains_aa contains_aa) [ 'a'; 'a' ])

let test_union () =
  let u = N.union ab_star contains_aa in
  Alcotest.(check bool) "ab in union" true (N.accepts u [ 'a'; 'b' ]);
  Alcotest.(check bool) "aa in union" true (N.accepts u [ 'a'; 'a' ]);
  Alcotest.(check bool) "ba not in union" false (N.accepts u [ 'b'; 'a' ])

let test_determinize_minimize () =
  let d = N.determinize contains_aa in
  Alcotest.(check bool) "dfa accepts aa" true (N.accepts d [ 'a'; 'a' ]);
  Alcotest.(check bool) "dfa rejects ab" false (N.accepts d [ 'a'; 'b' ]);
  let m = N.minimize contains_aa in
  Alcotest.(check bool) "minimal accepts baa" true (N.accepts m [ 'b'; 'a'; 'a' ]);
  (* minimal DFA for "contains aa" over {a,b} has exactly 3 states *)
  let m_ab =
    N.minimize
      (N.create ~init:[ 0 ] ~finals:[ 2 ]
         ~trans:
           [
             (0, 'a', 0); (0, 'b', 0); (0, 'a', 1); (1, 'a', 2);
             (2, 'a', 2); (2, 'b', 2);
           ])
  in
  Alcotest.(check int) "3 states" 3 (N.size m_ab)

let test_complement () =
  let c = N.complement ~alphabet:[ 'a'; 'b' ] contains_aa in
  Alcotest.(check bool) "ab in complement" true (N.accepts c [ 'a'; 'b' ]);
  Alcotest.(check bool) "aa not in complement" false (N.accepts c [ 'a'; 'a' ])

let test_equivalent () =
  Alcotest.(check bool) "self-equivalent" true
    (N.equivalent ~alphabet:[ 'a'; 'b' ] contains_aa (N.minimize contains_aa));
  Alcotest.(check bool) "different" false
    (N.equivalent ~alphabet:[ 'a'; 'b' ] contains_aa ab_star)

let test_trim () =
  let a =
    N.create ~init:[ 0 ] ~finals:[ 1; 7 ]
      ~trans:[ (0, 'a', 1); (5, 'b', 7) ]
  in
  let t = N.trim a in
  Alcotest.(check int) "only reachable" 2 (N.size t);
  Alcotest.(check bool) "language kept" true (N.accepts t [ 'a' ])

(* --- properties --- *)

let build_nfa (trans, finals) = N.create ~init:[ 0 ] ~finals ~trans

let prop_determinize_preserves =
  QCheck.Test.make ~name:"determinize preserves acceptance" ~count:300
    QCheck.(
      make
        Gen.(pair Testkit.Generators.nfa_gen Testkit.Generators.word_gen)
        ~print:(fun ((trans, finals), w) ->
          Fmt.str "trans=%a finals=%a word=%a"
            Fmt.(Dump.list (fun ppf (s, c, d) -> Fmt.pf ppf "(%d,%c,%d)" s c d))
            trans
            Fmt.(Dump.list int)
            finals
            Fmt.(Dump.list char)
            w))
    (fun (spec, w) ->
      let a = build_nfa spec in
      N.accepts a w = N.accepts (N.determinize a) w)

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimize preserves acceptance" ~count:300
    QCheck.(make Gen.(pair Testkit.Generators.nfa_gen Testkit.Generators.word_gen))
    (fun (spec, w) ->
      let a = build_nfa spec in
      N.accepts a w = N.accepts (N.minimize a) w)

let prop_complement_flips =
  QCheck.Test.make ~name:"complement flips acceptance" ~count:300
    QCheck.(make Gen.(pair Testkit.Generators.nfa_gen Testkit.Generators.word_gen))
    (fun (spec, w) ->
      let a = build_nfa spec in
      N.accepts a w <> N.accepts (N.complement ~alphabet:[ 'a'; 'b'; 'c' ] a) w)

let prop_intersect_is_conj =
  QCheck.Test.make ~name:"intersection acceptance is conjunction" ~count:300
    QCheck.(make Gen.(triple Testkit.Generators.nfa_gen Testkit.Generators.nfa_gen Testkit.Generators.word_gen))
    (fun (s1, s2, w) ->
      let a = build_nfa s1 and b = build_nfa s2 in
      N.accepts (N.intersect a b) w = (N.accepts a w && N.accepts b w))

let prop_union_is_disj =
  QCheck.Test.make ~name:"union acceptance is disjunction" ~count:300
    QCheck.(make Gen.(triple Testkit.Generators.nfa_gen Testkit.Generators.nfa_gen Testkit.Generators.word_gen))
    (fun (s1, s2, w) ->
      let a = build_nfa s1 and b = build_nfa s2 in
      N.accepts (N.union a b) w = (N.accepts a w || N.accepts b w))

let prop_shortest_is_accepted =
  QCheck.Test.make ~name:"shortest_accepted is accepted" ~count:300
    QCheck.(make Testkit.Generators.nfa_gen)
    (fun spec ->
      let a = build_nfa spec in
      match N.shortest_accepted a with
      | None -> N.is_language_empty a
      | Some w -> N.accepts a w)

(* --- SFA --- *)

module IntLabel = struct
  type t = int -> bool
  type letter = int

  let sat f x = f x
  let pp ppf _ = Fmt.string ppf "<pred>"
  let pp_letter = Fmt.int
end

module S = Automata.Sfa.Make (IntLabel)

let test_sfa_run () =
  (* 0 --(>5)--> 1 --(even)--> 2(bad) with default self-loops *)
  let a =
    S.create ~init:0 ~finals:[ 2 ]
      ~trans:[ (0, (fun x -> x > 5), 1); (1, (fun x -> x mod 2 = 0), 2) ]
  in
  Alcotest.(check bool) "no violation" false (S.violates a [ 1; 2; 3 ]);
  Alcotest.(check bool) "violation" true (S.violates a [ 9; 4 ]);
  Alcotest.(check bool) "self-loop on unmatched" true (S.violates a [ 1; 9; 3; 4 ]);
  Alcotest.(check (option int)) "position" (Some 3)
    (S.first_violation a [ 1; 9; 3; 4 ]);
  Alcotest.(check (option int)) "no position" None
    (S.first_violation a [ 1; 9; 3 ])

let test_sfa_concrete () =
  let a = S.create ~init:0 ~finals:[ 1 ] ~trans:[ (0, (fun x -> x = 7), 1) ] in
  let trans = S.concrete_transitions a [ 7; 8 ] in
  (* 0 --7--> 1, 0 --8--> 0 (default), 1 --7--> 1, 1 --8--> 1 *)
  Alcotest.(check int) "4 concrete transitions" 4 (List.length trans);
  Alcotest.(check bool) "has 0-7->1" true (List.mem (0, 7, 1) trans);
  Alcotest.(check bool) "has 0-8->0" true (List.mem (0, 8, 0) trans)

let suite =
  [
    Alcotest.test_case "accepts" `Quick test_accepts;
    Alcotest.test_case "empty language" `Quick test_empty_language;
    Alcotest.test_case "shortest accepted" `Quick test_shortest;
    Alcotest.test_case "product" `Quick test_product;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "determinize/minimize" `Quick test_determinize_minimize;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "equivalence" `Quick test_equivalent;
    Alcotest.test_case "trim" `Quick test_trim;
    Alcotest.test_case "sfa run" `Quick test_sfa_run;
    Alcotest.test_case "sfa concretize" `Quick test_sfa_concrete;
    QCheck_alcotest.to_alcotest prop_determinize_preserves;
    QCheck_alcotest.to_alcotest prop_minimize_preserves;
    QCheck_alcotest.to_alcotest prop_complement_flips;
    QCheck_alcotest.to_alcotest prop_intersect_is_conj;
    QCheck_alcotest.to_alcotest prop_union_is_disj;
    QCheck_alcotest.to_alcotest prop_shortest_is_accepted;
  ]

(* --- concat / star / reverse / enumerate --- *)

module RX = Automata.Regex.Make (CharAlpha)

let regex_gen =
  QCheck.Gen.(
    sized_size (int_bound 6) @@ fix (fun self n ->
        if n <= 0 then
          oneof [ return RX.eps; map RX.sym (oneofl [ 'a'; 'b' ]) ]
        else
          frequency
            [
              (2, map RX.sym (oneofl [ 'a'; 'b' ]));
              (3, map2 RX.alt (self (n / 2)) (self (n / 2)));
              (3, map2 RX.cat (self (n / 2)) (self (n / 2)));
              (2, map RX.star (self (n / 2)));
            ]))

let prop_concat_agrees_with_regex =
  QCheck.Test.make ~name:"NFA concat = regex cat" ~count:400
    (QCheck.make QCheck.Gen.(triple regex_gen regex_gen Testkit.Generators.word_gen))
    (fun (r1, r2, w) ->
      let w = List.filter (fun c -> c <> 'c') w in
      RX.N.accepts (RX.N.concat (RX.compile r1) (RX.compile r2)) w
      = RX.matches (RX.cat r1 r2) w)

let prop_star_agrees_with_regex =
  QCheck.Test.make ~name:"NFA star = regex star" ~count:400
    (QCheck.make QCheck.Gen.(pair regex_gen Testkit.Generators.word_gen))
    (fun (r, w) ->
      let w = List.filter (fun c -> c <> 'c') w in
      RX.N.accepts (RX.N.star (RX.compile r)) w = RX.matches (RX.star r) w)

let prop_reverse =
  QCheck.Test.make ~name:"reverse accepts mirrored words" ~count:400
    (QCheck.make QCheck.Gen.(pair regex_gen Testkit.Generators.word_gen))
    (fun (r, w) ->
      let w = List.filter (fun c -> c <> 'c') w in
      let n = RX.compile r in
      RX.N.accepts (RX.N.reverse n) (List.rev w) = RX.N.accepts n w)

let prop_enumerate_sound =
  QCheck.Test.make ~name:"enumerated words are accepted, shortest first"
    ~count:200 (QCheck.make regex_gen) (fun r ->
      let n = RX.compile r in
      let words = RX.N.enumerate ~max_length:4 ~limit:30 n in
      List.for_all (RX.N.accepts n) words
      &&
      let lens = List.map List.length words in
      List.sort compare lens = lens)

let test_enumerate_concrete () =
  let words = N.enumerate ~max_length:4 contains_aa in
  Alcotest.(check (list (list char))) "first words"
    [ [ 'a'; 'a' ] ]
    (List.filter (fun w -> List.length w <= 2) words);
  Alcotest.(check bool) "all contain aa" true
    (List.for_all (N.accepts contains_aa) words)

let suite =
  suite
  @ [
      Alcotest.test_case "enumerate" `Quick test_enumerate_concrete;
      QCheck_alcotest.to_alcotest prop_concat_agrees_with_regex;
      QCheck_alcotest.to_alcotest prop_star_agrees_with_regex;
      QCheck_alcotest.to_alcotest prop_reverse;
      QCheck_alcotest.to_alcotest prop_enumerate_sound;
    ]

(* Offline log auditing. *)

let ev = Usage.Event.make
let i = Usage.Value.int
let s = Usage.Value.str

let test_parse_log () =
  let events =
    Syntax.Audit.parse_log
      "sgn(s1)\nprice(45) // receipt\n\n// a comment line\nrating(80)\nping\n"
  in
  Alcotest.(check int) "four events" 4 (List.length events);
  Alcotest.(check bool) "first" true
    (Usage.Event.equal (List.nth events 0) (ev ~arg:(s "s1") "sgn"));
  Alcotest.(check bool) "second" true
    (Usage.Event.equal (List.nth events 1) (ev ~arg:(i 45) "price"));
  Alcotest.(check bool) "argless" true
    (Usage.Event.equal (List.nth events 3) (ev "ping"))

let test_parse_errors () =
  (match Syntax.Audit.parse_log "sgn(s1)\nnot an event!\n" with
  | exception Syntax.Audit.Error (_, 2) -> ()
  | _ -> Alcotest.fail "expected an error on line 2");
  match Syntax.Audit.parse_log "sgn($)\n" with
  | exception Syntax.Audit.Error (_, 1) -> ()
  | _ -> Alcotest.fail "expected a lexer error on line 1"

let test_check () =
  let events = [ ev ~arg:(s "s4") "sgn"; ev ~arg:(i 50) "price"; ev ~arg:(i 90) "rating" ] in
  let verdicts =
    Syntax.Audit.check [ Scenarios.Hotel.phi1; Scenarios.Hotel.phi2 ] events
  in
  (match verdicts with
  | [ v1; v2 ] ->
      Alcotest.(check (option int)) "phi1 violated at rating" (Some 3)
        v1.Syntax.Audit.violation_at;
      Alcotest.(check (option int)) "phi2 respected" None
        v2.Syntax.Audit.violation_at
  | _ -> Alcotest.fail "two verdicts");
  Alcotest.(check string) "rendering"
    "phi({s1},45,100): VIOLATED at event 3"
    (Fmt.str "%a" Syntax.Audit.pp_verdict (List.hd verdicts))

let test_simulated_logs_audit_clean () =
  (* histories produced by monitored runs of a valid plan pass the audit *)
  let t =
    Core.Simulate.run Scenarios.Hotel.repo
      (Core.Network.initial ~plan:Scenarios.Hotel.plan1
         [ ("c1", Scenarios.Hotel.client1) ])
      (Core.Simulate.random ~seed:9)
  in
  match t.Core.Simulate.final with
  | [ c ] ->
      let events =
        Core.History.flatten (Core.Validity.Monitor.history c.Core.Network.monitor)
      in
      let log =
        String.concat "\n"
          (List.map (fun e -> Fmt.str "%a" Usage.Event.pp e) events)
      in
      let reparsed = Syntax.Audit.parse_log log in
      Alcotest.(check int) "log round-trips" (List.length events)
        (List.length reparsed);
      let verdicts = Syntax.Audit.check [ Scenarios.Hotel.phi1 ] reparsed in
      Alcotest.(check bool) "clean audit" true
        (List.for_all (fun v -> v.Syntax.Audit.violation_at = None) verdicts)
  | _ -> Alcotest.fail "one client"

let suite =
  [
    Alcotest.test_case "log parsing" `Quick test_parse_log;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "checking" `Quick test_check;
    Alcotest.test_case "simulated logs audit clean" `Quick
      test_simulated_logs_audit_clean;
  ]

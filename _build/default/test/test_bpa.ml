(* The BPA rendering, framing regularization, and the automaton-based
   static validity checker (§3.1 / E8). *)

open Core

let never_z = List.nth Testkit.Generators.policy_pool 0
let at_most_2x = List.nth Testkit.Generators.policy_pool 2

let test_translation () =
  let h = Hexpr.seq (Hexpr.ev "x") (Hexpr.recv "a") in
  let p, defs = Bpa.Process.of_hexpr h in
  Alcotest.(check int) "no definitions" 0 (List.length defs);
  match Bpa.Process.transitions defs p with
  | [ (Bpa.Sym.Ev e, _) ] ->
      Alcotest.(check string) "first step is the event" "x" e.Usage.Event.name
  | _ -> Alcotest.fail "expected the event first"

let test_translation_mu () =
  let h = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.seq (Hexpr.ev "x") (Hexpr.var "h")) ]) in
  let p, defs = Bpa.Process.of_hexpr h in
  Alcotest.(check int) "one definition" 1 (List.length defs);
  let states = Bpa.Process.reachable defs p in
  Alcotest.(check bool) "finite" true (List.length states <= 4)

let test_nullable_fixpoint () =
  (* X ≜ a?.X + 0 — can terminate *)
  let h = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h"); ("b", Hexpr.nil) ]) in
  let p, defs = Bpa.Process.of_hexpr h in
  (* Seq (Var X) (atom) must offer the atom only after the loop exits;
     just check transitions exist and the system stays finite. *)
  let q = Bpa.Process.Seq (p, Bpa.Process.Atom (Bpa.Sym.Comm "done")) in
  let ts = Bpa.Process.transitions defs q in
  Alcotest.(check int) "two branch moves" 2 (List.length ts)

let test_to_nfa () =
  let h = Hexpr.frame never_z (Hexpr.ev "z") in
  let p, defs = Bpa.Process.of_hexpr h in
  let nfa, decode = Bpa.Process.to_nfa defs p in
  Alcotest.(check bool) "some states" true (Bpa.Process.Nfa.size nfa >= 3);
  Alcotest.(check bool) "decode initial" true (decode 0 <> None)

let test_check_valid () =
  (* φ[ #x ] with φ = never z: fine *)
  let ok = Hexpr.frame never_z (Hexpr.ev "x") in
  Alcotest.(check bool) "valid" true (Result.is_ok (Bpa.Check.valid ok));
  (* φ[ #z ]: violated *)
  let bad = Hexpr.frame never_z (Hexpr.ev "z") in
  match Bpa.Check.valid bad with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error ce ->
      Alcotest.(check string) "policy" (Usage.Policy.id never_z)
        (Usage.Policy.id ce.Bpa.Check.policy);
      Alcotest.(check bool) "witness mentions z" true
        (List.exists
           (function
             | Bpa.Sym.Ev e -> String.equal e.Usage.Event.name "z"
             | _ -> false)
           ce.Bpa.Check.word)

let test_check_retroactive () =
  (* #z . φ[#x]: the z fired before Lφ still counts *)
  let retro = Hexpr.seq (Hexpr.ev "z") (Hexpr.frame never_z (Hexpr.ev "x")) in
  Alcotest.(check bool) "retroactive violation" true
    (Result.is_error (Bpa.Check.valid retro))

let test_check_recursion () =
  let loop =
    Hexpr.frame at_most_2x
      (Hexpr.mu "h"
         (Hexpr.branch
            [ ("a", Hexpr.seq (Hexpr.ev "x") (Hexpr.var "h")); ("b", Hexpr.nil) ]))
  in
  match Bpa.Check.valid loop with
  | Ok () -> Alcotest.fail "third x violates"
  | Error ce ->
      let xs =
        List.filter
          (function Bpa.Sym.Ev _ -> true | _ -> false)
          ce.Bpa.Check.word
      in
      Alcotest.(check int) "three events in shortest witness" 3 (List.length xs)

let test_regularize () =
  let inner_redundant =
    Hexpr.frame never_z (Hexpr.seq (Hexpr.ev "x") (Hexpr.frame never_z (Hexpr.ev "y")))
  in
  let r = Bpa.Regularize.regularize inner_redundant in
  Alcotest.(check int) "nesting depth 1 after" 1 (Bpa.Regularize.max_nesting r);
  Alcotest.(check int) "was 2 before" 2 (Bpa.Regularize.max_nesting inner_redundant);
  (* idempotent *)
  Alcotest.(check bool) "idempotent" true
    (Hexpr.equal r (Bpa.Regularize.regularize r))

let test_regularize_open () =
  let h =
    Hexpr.frame never_z (Hexpr.open_ ~rid:1 ~policy:never_z (Hexpr.recv "a"))
  in
  let r = Bpa.Regularize.regularize h in
  (* the open survives but its policy is dropped *)
  match Hexpr.requests r with
  | [ { Hexpr.policy = None; rid = 1 } ] -> ()
  | _ -> Alcotest.fail "expected the session policy to be erased"

(* E8: the two static validity checkers agree *)
let prop_bpa_agrees_with_direct =
  QCheck.Test.make ~name:"E8: BPA model checking = direct exploration" ~count:250
    Testkit.Generators.hexpr_arb (fun h ->
      Result.is_ok (Bpa.Check.valid h)
      = Result.is_ok (Validity.check_expr h))

let prop_regularize_preserves_validity =
  QCheck.Test.make ~name:"regularization preserves validity" ~count:250
    Testkit.Generators.hexpr_arb (fun h ->
      Result.is_ok (Validity.check_expr h)
      = Result.is_ok (Validity.check_expr (Bpa.Regularize.regularize h)))

let prop_unregularized_agrees =
  QCheck.Test.make ~name:"depth-bounded check without regularization agrees"
    ~count:150 Testkit.Generators.hexpr_arb (fun h ->
      Result.is_ok (Bpa.Check.valid ~regularized:false h)
      = Result.is_ok (Validity.check_expr h))

let suite =
  [
    Alcotest.test_case "hexpr to BPA" `Quick test_translation;
    Alcotest.test_case "recursion to definitions" `Quick test_translation_mu;
    Alcotest.test_case "nullability" `Quick test_nullable_fixpoint;
    Alcotest.test_case "finite NFA extraction" `Quick test_to_nfa;
    Alcotest.test_case "validity via product" `Quick test_check_valid;
    Alcotest.test_case "history dependence" `Quick test_check_retroactive;
    Alcotest.test_case "violations through recursion" `Quick test_check_recursion;
    Alcotest.test_case "framing regularization" `Quick test_regularize;
    Alcotest.test_case "regularization of sessions" `Quick test_regularize_open;
    QCheck_alcotest.to_alcotest prop_bpa_agrees_with_direct;
    QCheck_alcotest.to_alcotest prop_regularize_preserves_validity;
    QCheck_alcotest.to_alcotest prop_unregularized_agrees;
  ]

(* The stand-alone LTS of history expressions: one test per rule of the
   §3 table, plus finiteness of the reachable state space. *)

open Core

let h_testable = Alcotest.testable Hexpr.pp Hexpr.equal
let a_testable = Alcotest.testable Action.pp Action.equal
let trans_t = Alcotest.(list (pair a_testable h_testable))
let phi = Scenarios.Hotel.phi1

let sorted ts = List.sort compare ts

let check_trans msg expected t =
  Alcotest.check trans_t msg (sorted expected) (sorted (Semantics.transitions t))

let test_nil_var () =
  check_trans "eps has no transitions" [] Hexpr.nil;
  check_trans "var has no transitions" [] (Hexpr.var "h")

let test_event () =
  let e = Usage.Event.make ~arg:(Usage.Value.int 1) "x" in
  check_trans "alpha -> eps" [ (Action.Evt e, Hexpr.nil) ] (Hexpr.event e)

let test_echoice () =
  let t = Hexpr.branch [ ("a", Hexpr.ev "x"); ("b", Hexpr.nil) ] in
  check_trans "E-Choice"
    [ (Action.In "a", Hexpr.ev "x"); (Action.In "b", Hexpr.nil) ]
    t

let test_ichoice () =
  let t = Hexpr.select [ ("a", Hexpr.ev "x"); ("b", Hexpr.nil) ] in
  check_trans "I-Choice"
    [ (Action.Out "a", Hexpr.ev "x"); (Action.Out "b", Hexpr.nil) ]
    t

let test_s_open () =
  let body = Hexpr.recv "a" in
  let t = Hexpr.open_ ~rid:7 ~policy:phi body in
  let r = { Hexpr.rid = 7; policy = Some phi } in
  check_trans "S-Open"
    [ (Action.Op r, Hexpr.seq body (Hexpr.close ~rid:7 ~policy:phi ())) ]
    t;
  (* then the close fires after the body *)
  let after = Hexpr.seq Hexpr.nil (Hexpr.close ~rid:7 ~policy:phi ()) in
  check_trans "close fires" [ (Action.Cl r, Hexpr.nil) ] after

let test_p_open () =
  let body = Hexpr.ev "x" in
  let t = Hexpr.frame phi body in
  check_trans "P-Open"
    [ (Action.Frm_open phi, Hexpr.seq body (Hexpr.frame_close phi)) ]
    t;
  check_trans "frame close"
    [ (Action.Frm_close phi, Hexpr.nil) ]
    (Hexpr.frame_close phi)

let test_conc () =
  (* H·H'' steps in H, and ε·H ≡ H makes the continuation take over *)
  let t = Hexpr.seq (Hexpr.ev "x") (Hexpr.ev "y") in
  (match Semantics.transitions t with
  | [ (Action.Evt _, k) ] -> Alcotest.check h_testable "residual" (Hexpr.ev "y") k
  | _ -> Alcotest.fail "expected one transition");
  Alcotest.(check bool) "terminated" true
    (Semantics.is_terminated (Hexpr.seq Hexpr.nil Hexpr.nil))

let test_rec () =
  (* μh. a?.h unfolds lazily *)
  let t = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h") ]) in
  (match Semantics.transitions t with
  | [ (Action.In "a", k) ] -> Alcotest.check h_testable "loops back" t k
  | _ -> Alcotest.fail "expected a single input transition");
  Alcotest.(check int) "one reachable state" 1 (List.length (Semantics.reachable t))

let test_choice_ext () =
  let t = Hexpr.choice (Hexpr.ev "x") (Hexpr.ev "y") in
  match Semantics.transitions t with
  | [ (Action.Tau, _); (Action.Tau, _) ] -> ()
  | _ -> Alcotest.fail "expected two tau commits"

let test_reachable_finite () =
  (* broker: finitely many residuals *)
  let n = List.length (Semantics.reachable Scenarios.Hotel.broker) in
  Alcotest.(check bool) "finite and small" true (n > 3 && n < 40);
  (* recursion through sequences stays finite *)
  let loop =
    Hexpr.mu "h"
      (Hexpr.seq
         (Hexpr.select [ ("a", Hexpr.nil); ("b", Hexpr.nil) ])
         (Hexpr.var "h"))
  in
  Alcotest.(check bool) "loop finite" true
    (List.length (Semantics.reachable loop) <= 3)

let test_traces () =
  let t = Hexpr.branch [ ("a", Hexpr.ev "x"); ("b", Hexpr.nil) ] in
  let trs = Semantics.traces ~depth:3 t in
  Alcotest.(check int) "two maximal traces" 2 (List.length trs);
  Alcotest.(check bool) "lengths" true
    (List.exists (fun tr -> List.length tr = 2) trs
    && List.exists (fun tr -> List.length tr = 1) trs)

let test_step () =
  let t = Hexpr.branch [ ("a", Hexpr.ev "x"); ("b", Hexpr.nil) ] in
  Alcotest.(check int) "step a" 1 (List.length (Semantics.step t (Action.In "a")));
  Alcotest.(check int) "step c" 0 (List.length (Semantics.step t (Action.In "c")))

let prop_reachable_closed =
  QCheck.Test.make ~name:"reachable set closed under transitions" ~count:150
    Testkit.Generators.hexpr_arb (fun h ->
      let states = Semantics.reachable h in
      List.for_all
        (fun s ->
          List.for_all
            (fun (_, s') -> List.exists (Hexpr.equal s') states)
            (Semantics.transitions s))
        states)

let prop_terminated_no_transitions =
  QCheck.Test.make ~name:"only eps is terminated" ~count:300 Testkit.Generators.hexpr_arb
    (fun h ->
      if Semantics.is_terminated h then Semantics.transitions h = [] else true)

let suite =
  [
    Alcotest.test_case "eps and var" `Quick test_nil_var;
    Alcotest.test_case "rule (alpha Acc)" `Quick test_event;
    Alcotest.test_case "rule E-Choice" `Quick test_echoice;
    Alcotest.test_case "rule I-Choice" `Quick test_ichoice;
    Alcotest.test_case "rule S-Open" `Quick test_s_open;
    Alcotest.test_case "rule P-Open" `Quick test_p_open;
    Alcotest.test_case "rule Conc" `Quick test_conc;
    Alcotest.test_case "rule Rec" `Quick test_rec;
    Alcotest.test_case "unguarded choice commits" `Quick test_choice_ext;
    Alcotest.test_case "reachable is finite" `Quick test_reachable_finite;
    Alcotest.test_case "bounded traces" `Quick test_traces;
    Alcotest.test_case "step" `Quick test_step;
    QCheck_alcotest.to_alcotest prop_reachable_closed;
    QCheck_alcotest.to_alcotest prop_terminated_no_transitions;
  ]

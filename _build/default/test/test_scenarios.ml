(* End-to-end verification of the two non-paper scenarios shipped with
   the library (Scenarios.Ecommerce, Scenarios.Cloud). *)

open Core
open Scenarios

let verdict repo client plan =
  match Planner.(analyze repo ~client plan).verdict with
  | Ok _ -> "valid"
  | Error (Planner.Not_compliant _) -> "not-compliant"
  | Error (Planner.Insecure _) -> "insecure"
  | Error (Planner.Unserved _) -> "unserved"
  | Error (Planner.Outside_fragment _) -> "outside-fragment"

(* --- e-commerce --- *)

let test_ecommerce_matrix () =
  let shopper = ("shopper", Ecommerce.shopper) in
  let plan20 loc = Plan.of_list [ (10, "mkt"); (20, loc) ] in
  Alcotest.(check string) "alpha" "valid" (verdict Ecommerce.repo shopper (plan20 "alpha"));
  Alcotest.(check string) "bravo (overcharge)" "insecure"
    (verdict Ecommerce.repo shopper (plan20 "bravo"));
  Alcotest.(check string) "charlie (retry)" "not-compliant"
    (verdict Ecommerce.repo shopper (plan20 "charlie"));
  Alcotest.(check string) "mkt serving itself" "not-compliant"
    (verdict Ecommerce.repo shopper (plan20 "mkt"))

let test_ecommerce_unique_valid () =
  let reports =
    Planner.valid_plans ~all:false Ecommerce.repo
      ~client:("shopper", Ecommerce.shopper)
  in
  Alcotest.(check int) "one valid plan" 1 (List.length reports);
  Alcotest.(check bool) "it is {10[mkt],20[alpha]}" true
    (Plan.equal (List.hd reports).Planner.plan Ecommerce.good_plan)

let test_careful_shopper () =
  let carol = ("carol", Ecommerce.careful_shopper) in
  Alcotest.(check string) "alpha authenticates" "valid"
    (verdict Ecommerce.repo carol Ecommerce.careful_plan);
  (* with a huge limit, bravo still fails carol: no auth before charge *)
  let lax =
    Hexpr.frame Ecommerce.auth_first
      (Hexpr.open_ ~rid:12 ~policy:(Ecommerce.spend 1000)
         (Hexpr.select
            [ ("order", Hexpr.branch [ ("ok", Hexpr.nil); ("fail", Hexpr.nil) ]) ]))
  in
  match
    Planner.(
      analyze Ecommerce.repo ~client:("lax", lax)
        (Plan.of_list [ (12, "mkt"); (20, "bravo") ]))
      .verdict
  with
  | Error (Planner.Insecure stuck) -> (
      match stuck.Netcheck.kind with
      | Netcheck.Security p ->
          Alcotest.(check string) "auth_first blocks"
            (Usage.Policy.id Ecommerce.auth_first)
            (Usage.Policy.id p)
      | _ -> Alcotest.fail "expected a security stuckness")
  | _ -> Alcotest.fail "bravo must be insecure for carol"

let test_ecommerce_runs () =
  let t =
    Simulate.run Ecommerce.repo
      (Network.initial ~plan:Ecommerce.careful_plan
         [ ("carol", Ecommerce.careful_shopper) ])
      (Simulate.random ~seed:5)
  in
  Alcotest.(check bool) "completes" true (t.Simulate.outcome = Simulate.Completed);
  match t.Simulate.final with
  | [ c ] ->
      let h = Validity.Monitor.history c.Network.monitor in
      Alcotest.(check bool) "history valid" true (Validity.valid h);
      Alcotest.(check bool) "auth before charge" true
        (let names =
           List.map (fun (e : Usage.Event.t) -> e.name) (History.flatten h)
         in
         names = [ "auth"; "charge" ])
  | _ -> Alcotest.fail "one client"

let test_spend_policy () =
  let p = Ecommerce.spend 100 in
  let charge n = Usage.Event.make ~arg:(Usage.Value.int n) "charge" in
  Alcotest.(check bool) "100 ok" true (Usage.Policy.respects p [ charge 100 ]);
  Alcotest.(check bool) "101 over" false (Usage.Policy.respects p [ charge 101 ]);
  Alcotest.(check bool) "several small ok" true
    (Usage.Policy.respects p [ charge 60; charge 60 ])

(* --- cloud --- *)

let test_cloud_matrix () =
  let ana = ("ana", Cloud.analyst) in
  let repo = Cloud.repo ~worker:Cloud.frugal_worker in
  let plan3 loc = Plan.of_list [ (1, "orc"); (2, "wrk"); (3, loc) ] in
  Alcotest.(check string) "store" "valid" (verdict repo ana (plan3 "store"));
  Alcotest.(check string) "flaky" "not-compliant" (verdict repo ana (plan3 "flaky"));
  (* the compacting storage writes 3 events per put but only 1 write
     counts against max_writes: 2 puts = 2 writes: fine for the plain
     analyst *)
  Alcotest.(check string) "compact (plain analyst)" "valid"
    (verdict repo ana (plan3 "compact"));
  Alcotest.(check string) "compact (strict analyst)" "insecure"
    (verdict repo ("ana", Cloud.strict_analyst) (plan3 "compact"))

let test_cloud_greedy () =
  let repo = Cloud.repo ~worker:Cloud.greedy_worker in
  match
    Planner.(analyze repo ~client:("ana", Cloud.analyst) Cloud.good_plan).verdict
  with
  | Error (Planner.Insecure stuck) -> (
      match stuck.Netcheck.kind with
      | Netcheck.Security p ->
          Alcotest.(check string) "max_writes blocks"
            (Usage.Policy.id (Cloud.max_writes 2))
            (Usage.Policy.id p)
      | _ -> Alcotest.fail "expected security")
  | _ -> Alcotest.fail "greedy worker must be insecure"

let test_cloud_depth () =
  (* the run really goes three sessions deep *)
  let repo = Cloud.repo ~worker:Cloud.frugal_worker in
  let cfg = Network.initial ~plan:Cloud.good_plan [ ("ana", Cloud.analyst) ] in
  let t = Simulate.run repo cfg Simulate.first in
  Alcotest.(check bool) "completes" true (t.Simulate.outcome = Simulate.Completed);
  let max_depth =
    List.fold_left
      (fun acc (_, cfg) ->
        (* count session nodes on the deepest branch *)
        let rec depth = function
          | Network.Leaf _ -> 0
          | Network.Session (a, b) -> 1 + max (depth a) (depth b)
        in
        List.fold_left (fun acc c -> max acc (depth c.Network.comp)) acc cfg)
      0 t.Simulate.steps
  in
  Alcotest.(check int) "three nested sessions" 3 max_depth

let test_cloud_cost () =
  let repo = Cloud.repo ~worker:Cloud.frugal_worker in
  let model = Quant.Model.of_list [ ("write", 5.0) ] in
  Alcotest.(check (option (float 1e-9))) "two writes at 5" (Some 10.0)
    (Quant.Plan_cost.worst_case repo Cloud.good_plan ("ana", Cloud.analyst) model);
  (* the unbounded storage loop is bounded by the worker's protocol *)
  Alcotest.(check bool) "storage alone is unbounded" true
    (Quant.Cost.worst_case model Cloud.storage = None)

let suite =
  [
    Alcotest.test_case "ecommerce verdicts" `Quick test_ecommerce_matrix;
    Alcotest.test_case "ecommerce unique valid plan" `Quick test_ecommerce_unique_valid;
    Alcotest.test_case "careful shopper" `Quick test_careful_shopper;
    Alcotest.test_case "ecommerce runs" `Quick test_ecommerce_runs;
    Alcotest.test_case "spend policy" `Quick test_spend_policy;
    Alcotest.test_case "cloud verdicts" `Quick test_cloud_matrix;
    Alcotest.test_case "greedy worker" `Quick test_cloud_greedy;
    Alcotest.test_case "three-level nesting" `Quick test_cloud_depth;
    Alcotest.test_case "cloud costs" `Quick test_cloud_cost;
  ]

(* --- the payment mesh --- *)

let test_mesh_good_plan () =
  Alcotest.(check string) "good plan valid" "valid"
    (verdict Mesh.repo ("shopper", Mesh.shopper) Mesh.good_plan)

let test_mesh_failures () =
  let plan ~pay ~inv =
    Plan.of_list [ (1, "gw"); (2, "orders"); (3, pay); (4, inv) ]
  in
  (* payB breaks both conjuncts of the shopper's policy *)
  Alcotest.(check string) "payB insecure" "insecure"
    (verdict Mesh.repo ("shopper", Mesh.shopper) (plan ~pay:"payB" ~inv:"inv"));
  (* the flaky inventory may answer backorder: non-compliant *)
  Alcotest.(check string) "invX not compliant" "not-compliant"
    (verdict Mesh.repo ("shopper", Mesh.shopper) (plan ~pay:"payA" ~inv:"invX"))

let test_mesh_unique_valid () =
  let reports =
    Planner.valid_plans ~all:false Mesh.repo ~client:("shopper", Mesh.shopper)
  in
  Alcotest.(check int) "unique valid plan" 1 (List.length reports);
  Alcotest.(check bool) "it is the good plan" true
    (Plan.equal (List.hd reports).Planner.plan Mesh.good_plan)

let test_mesh_runs_clean () =
  let stats =
    Simulate.batch ~runs:50 Mesh.repo (fun () ->
        Network.initial ~plan:Mesh.good_plan [ ("shopper", Mesh.shopper) ])
  in
  Alcotest.(check int) "all complete" 50 stats.Simulate.completed;
  Alcotest.(check int) "all valid" 50 stats.Simulate.outcomes_valid

let test_mesh_sequence_of_sessions () =
  (* the order service's two nested sessions happen in sequence: the
     payment session closes before the inventory session opens *)
  let t =
    Simulate.run Mesh.repo
      (Network.initial ~plan:Mesh.good_plan [ ("shopper", Mesh.shopper) ])
      Simulate.first
  in
  Alcotest.(check bool) "completed" true (t.Simulate.outcome = Simulate.Completed);
  let indexed =
    List.mapi (fun i (g, _) -> (i, g)) t.Simulate.steps
  in
  let find f =
    match List.find_opt (fun (_, g) -> f g) indexed with
    | Some (i, _) -> i
    | None -> Alcotest.fail "expected step missing"
  in
  let close3 = find (function Network.L_close (r, _) -> r.Hexpr.rid = 3 | _ -> false) in
  let open4 = find (function Network.L_open (r, _, _) -> r.Hexpr.rid = 4 | _ -> false) in
  Alcotest.(check bool) "payment closes before inventory opens" true
    (close3 < open4)

let test_mesh_policy_reaches_grandchild () =
  (* the shopper's conjoined policy blocks the uncapped charge performed
     two sessions below; the witness trace shows the whole chain *)
  match
    Netcheck.check_client Mesh.repo
      (Plan.of_list [ (1, "gw"); (2, "orders"); (3, "payB"); (4, "inv") ])
      ("shopper", Mesh.shopper)
  with
  | Netcheck.Valid _ -> Alcotest.fail "payB must be blocked"
  | Netcheck.Invalid stuck ->
      let opens =
        List.filter
          (function Network.L_open _ -> true | _ -> false)
          stuck.Netcheck.trace
      in
      Alcotest.(check int) "three opens before the block" 3 (List.length opens)

let suite =
  suite
  @ [
      Alcotest.test_case "mesh: good plan" `Quick test_mesh_good_plan;
      Alcotest.test_case "mesh: failure taxonomy" `Quick test_mesh_failures;
      Alcotest.test_case "mesh: unique valid plan" `Quick test_mesh_unique_valid;
      Alcotest.test_case "mesh: runs clean" `Quick test_mesh_runs_clean;
      Alcotest.test_case "mesh: sessions in sequence" `Quick
        test_mesh_sequence_of_sessions;
      Alcotest.test_case "mesh: policy reaches grandchild" `Quick
        test_mesh_policy_reaches_grandchild;
    ]

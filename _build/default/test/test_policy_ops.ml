(* Policy conjunction and rendering. *)

let ev = Usage.Event.make
let i = Usage.Value.int
let s = Usage.Value.str

let never_z = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.never "z")
let at_most_1x = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.at_most ~n:1 "x")

let test_conj_id () =
  let c = Usage.Policy_ops.conj never_z at_most_1x in
  Alcotest.(check string) "identifier" "(never_z() & at_most_1_x())"
    (Usage.Policy.id c)

let test_conj_semantics () =
  let c = Usage.Policy_ops.conj never_z at_most_1x in
  let respects = Usage.Policy.respects c in
  Alcotest.(check bool) "empty ok" true (respects []);
  Alcotest.(check bool) "one x ok" true (respects [ ev "x" ]);
  Alcotest.(check bool) "two x bad (right conjunct)" false
    (respects [ ev "x"; ev "x" ]);
  Alcotest.(check bool) "z bad (left conjunct)" false (respects [ ev "z" ]);
  Alcotest.(check bool) "other events ok" true (respects [ ev "y"; ev "w" ])

let test_conj_same_automaton_different_actuals () =
  (* two instances of φ with different thresholds must conjoin without
     their parameters clashing *)
  let p1 = Usage.Policy_lib.hotel_policy ~blacklist:[ "a" ] ~price:10 ~rating:50 in
  let p2 = Usage.Policy_lib.hotel_policy ~blacklist:[ "b" ] ~price:20 ~rating:90 in
  let c = Usage.Policy_ops.conj p1 p2 in
  let trace name p t =
    [ ev ~arg:(s name) "sgn"; ev ~arg:(i p) "price"; ev ~arg:(i t) "rating" ]
  in
  (* "a" black-listed by p1 only *)
  Alcotest.(check bool) "a blacklisted" false
    (Usage.Policy.respects c (trace "a" 5 100));
  Alcotest.(check bool) "b blacklisted" false
    (Usage.Policy.respects c (trace "b" 5 100));
  (* price 15 exceeds p1's limit (10): needs rating ≥ 50 *)
  Alcotest.(check bool) "price 15 rating 60 ok" true
    (Usage.Policy.respects c (trace "c" 15 60));
  Alcotest.(check bool) "price 15 rating 40 bad for p1" false
    (Usage.Policy.respects c (trace "c" 15 40));
  (* price 25 exceeds both limits: needs rating ≥ 90 *)
  Alcotest.(check bool) "price 25 rating 95 ok" true
    (Usage.Policy.respects c (trace "c" 25 95));
  Alcotest.(check bool) "price 25 rating 60 bad for p2" false
    (Usage.Policy.respects c (trace "c" 25 60))

let test_conj_all () =
  Alcotest.(check bool) "empty" true (Usage.Policy_ops.conj_all [] = None);
  match Usage.Policy_ops.conj_all [ never_z ] with
  | Some p -> Alcotest.(check string) "singleton" "never_z()" (Usage.Policy.id p)
  | None -> Alcotest.fail "singleton must conjoin"

let test_event_names () =
  Alcotest.(check (list string)) "names" [ "z" ]
    (Usage.Policy_ops.event_names never_z);
  Alcotest.(check (list string)) "hotel names" [ "price"; "rating"; "sgn" ]
    (Usage.Policy_ops.event_names Scenarios.Hotel.phi1)

let test_dot () =
  let out = Fmt.str "%a" Usage.Policy_ops.pp_dot Scenarios.Hotel.phi1 in
  Alcotest.(check bool) "digraph" true
    (String.length out > 0
    && String.sub out 0 7 = "digraph"
    && String.length (String.trim out) > 50)

let test_conj_in_session () =
  (* a conjoined policy governs a request end to end *)
  let pol = Usage.Policy_ops.conj never_z at_most_1x in
  (* the client awaits an answer, so it cannot close the session before
     the service has performed its events *)
  let client =
    Core.Hexpr.open_ ~rid:1 ~policy:pol
      (Core.Hexpr.select [ ("go", Core.Hexpr.recv "done_") ])
  in
  let service body =
    Core.Hexpr.branch [ ("go", Core.Hexpr.seq body (Core.Hexpr.send "done_")) ]
  in
  let ok_service = service (Core.Hexpr.ev "x") in
  let bad_service =
    service (Core.Hexpr.seq (Core.Hexpr.ev "x") (Core.Hexpr.ev "x"))
  in
  let repo = [ ("ok", ok_service); ("bad", bad_service) ] in
  let check loc =
    match
      Core.Netcheck.check_client repo
        (Core.Plan.of_list [ (1, loc) ])
        ("c", client)
    with
    | Core.Netcheck.Valid _ -> true
    | Core.Netcheck.Invalid _ -> false
  in
  Alcotest.(check bool) "one x fine" true (check "ok");
  Alcotest.(check bool) "two x blocked" false (check "bad")

(* property: conjunction = logical and of the verdicts *)
let prop_conj_is_and =
  QCheck.Test.make ~name:"conj violates iff either violates" ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple Testkit.Generators.policy_gen Testkit.Generators.policy_gen
           (list_size (int_bound 10) Testkit.Generators.event_gen)))
    (fun (p, q, tr) ->
      Usage.Policy.respects (Usage.Policy_ops.conj p q) tr
      = (Usage.Policy.respects p tr && Usage.Policy.respects q tr))

let prop_conj_hotel_instances =
  QCheck.Test.make ~name:"conj of hotel instances is their and" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let hotel_event =
           let* name = oneofl [ "sgn"; "price"; "rating" ] in
           if name = "sgn" then
             let* h = oneofl [ "a"; "b"; "c" ] in
             return (ev ~arg:(s h) name)
           else
             let* v = int_bound 100 in
             return (ev ~arg:(i v) name)
         in
         pair
           (pair (int_bound 50) (int_bound 100))
           (list_size (int_bound 8) hotel_event)))
    (fun (((price, rating), tr)) ->
      let p1 = Usage.Policy_lib.hotel_policy ~blacklist:[ "a" ] ~price ~rating in
      let p2 =
        Usage.Policy_lib.hotel_policy ~blacklist:[ "b" ] ~price:(price + 5)
          ~rating:(rating / 2)
      in
      Usage.Policy.respects (Usage.Policy_ops.conj p1 p2) tr
      = (Usage.Policy.respects p1 tr && Usage.Policy.respects p2 tr))

let suite =
  [
    Alcotest.test_case "conj identifier" `Quick test_conj_id;
    Alcotest.test_case "conj semantics" `Quick test_conj_semantics;
    Alcotest.test_case "conj with clashing parameters" `Quick
      test_conj_same_automaton_different_actuals;
    Alcotest.test_case "conj_all" `Quick test_conj_all;
    Alcotest.test_case "event names" `Quick test_event_names;
    Alcotest.test_case "dot rendering" `Quick test_dot;
    Alcotest.test_case "conjunction in sessions" `Quick test_conj_in_session;
    QCheck_alcotest.to_alcotest prop_conj_is_and;
    QCheck_alcotest.to_alcotest prop_conj_hotel_instances;
  ]

(* --- language reasoning over a ground alphabet --- *)

let hotel_alphabet =
  (* includes a hotel outside both black lists (s2) and a rating (80)
     below phi1's threshold but above phi2's, so neither policy subsumes
     the other *)
  let open Usage in
  [
    Event.make ~arg:(Value.str "s1") "sgn";
    Event.make ~arg:(Value.str "s2") "sgn";
    Event.make ~arg:(Value.str "s3") "sgn";
    Event.make ~arg:(Value.int 40) "price";
    Event.make ~arg:(Value.int 90) "price";
    Event.make ~arg:(Value.int 60) "rating";
    Event.make ~arg:(Value.int 80) "rating";
    Event.make ~arg:(Value.int 100) "rating";
  ]

let x_alphabet = [ ev "x"; ev "y" ]

let test_subsumes () =
  let am1 = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.at_most ~n:1 "x") in
  let am2 = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.at_most ~n:2 "x") in
  (* at-most-1 is stricter: everything violating at-most-2 violates it *)
  Alcotest.(check bool) "stricter subsumes" true
    (Usage.Policy_ops.subsumes ~alphabet:x_alphabet am1 am2);
  Alcotest.(check bool) "looser does not" false
    (Usage.Policy_ops.subsumes ~alphabet:x_alphabet am2 am1);
  Alcotest.(check bool) "reflexive" true
    (Usage.Policy_ops.subsumes ~alphabet:x_alphabet am1 am1)

let test_hotel_policies_incomparable () =
  let p1 = Scenarios.Hotel.phi1 and p2 = Scenarios.Hotel.phi2 in
  Alcotest.(check bool) "phi1 does not subsume phi2" false
    (Usage.Policy_ops.subsumes ~alphabet:hotel_alphabet p1 p2);
  Alcotest.(check bool) "phi2 does not subsume phi1" false
    (Usage.Policy_ops.subsumes ~alphabet:hotel_alphabet p2 p1)

let test_conj_subsumes_both () =
  let p1 = Scenarios.Hotel.phi1 and p2 = Scenarios.Hotel.phi2 in
  let c = Usage.Policy_ops.conj p1 p2 in
  Alcotest.(check bool) "conj subsumes left" true
    (Usage.Policy_ops.subsumes ~alphabet:hotel_alphabet c p1);
  Alcotest.(check bool) "conj subsumes right" true
    (Usage.Policy_ops.subsumes ~alphabet:hotel_alphabet c p2)

let test_vacuous () =
  (* never "z" cannot be violated over an alphabet without z *)
  Alcotest.(check bool) "vacuous" true
    (Usage.Policy_ops.vacuous ~alphabet:x_alphabet never_z);
  Alcotest.(check bool) "not vacuous" false
    (Usage.Policy_ops.vacuous ~alphabet:[ ev "z" ] never_z)

let test_witness () =
  match Usage.Policy_ops.witness ~alphabet:[ ev "x" ] at_most_1x with
  | Some tr -> Alcotest.(check int) "two x suffice" 2 (List.length tr)
  | None -> Alcotest.fail "violable policy must have a witness"

let prop_witness_violates =
  QCheck.Test.make ~name:"witnesses do violate" ~count:200
    (QCheck.make Testkit.Generators.policy_gen) (fun p ->
      let alphabet =
        [ ev "x"; ev "y"; ev "z"; ev ~arg:(i 1) "x" ]
      in
      match Usage.Policy_ops.witness ~alphabet p with
      | None -> true
      | Some tr -> not (Usage.Policy.respects p tr))

let prop_subsumes_agrees_with_traces =
  QCheck.Test.make ~name:"subsumption agrees with trace checking" ~count:150
    (QCheck.make
       QCheck.Gen.(
         triple Testkit.Generators.policy_gen Testkit.Generators.policy_gen
           (list_size (int_bound 8) (oneofl [ "x"; "y"; "z" ]))))
    (fun (p, q, names) ->
      let alphabet = [ ev "x"; ev "y"; ev "z" ] in
      let tr = List.map ev names in
      if Usage.Policy_ops.subsumes ~alphabet p q then
        (* any violation of q is a violation of p *)
        Usage.Policy.respects q tr || not (Usage.Policy.respects p tr)
      else true)

let suite =
  suite
  @ [
      Alcotest.test_case "subsumption" `Quick test_subsumes;
      Alcotest.test_case "incomparable hotel policies" `Quick
        test_hotel_policies_incomparable;
      Alcotest.test_case "conjunction subsumes conjuncts" `Quick
        test_conj_subsumes_both;
      Alcotest.test_case "vacuity" `Quick test_vacuous;
      Alcotest.test_case "witnesses" `Quick test_witness;
      QCheck_alcotest.to_alcotest prop_witness_violates;
      QCheck_alcotest.to_alcotest prop_subsumes_agrees_with_traces;
    ]

(* Regular expressions: derivative semantics vs Thompson compilation,
   and regex-defined policies. *)

module CharAlpha = struct
  type t = char

  let compare = Char.compare
  let pp = Fmt.char
end

module R = Automata.Regex.Make (CharAlpha)

let word s = List.init (String.length s) (String.get s)

(* (a|b)*abb — the classic *)
let classic =
  R.(cat (star (alt (sym 'a') (sym 'b'))) (of_word [ 'a'; 'b'; 'b' ]))

let test_matches () =
  Alcotest.(check bool) "abb" true (R.matches classic (word "abb"));
  Alcotest.(check bool) "aabb" true (R.matches classic (word "aabb"));
  Alcotest.(check bool) "babb" true (R.matches classic (word "babb"));
  Alcotest.(check bool) "ab" false (R.matches classic (word "ab"));
  Alcotest.(check bool) "abba" false (R.matches classic (word "abba"));
  Alcotest.(check bool) "empty" false (R.matches classic [])

let test_smart_constructors () =
  Alcotest.(check bool) "alt empty" true (R.alt R.empty (R.sym 'a') = R.sym 'a');
  Alcotest.(check bool) "cat eps" true (R.cat R.eps (R.sym 'a') = R.sym 'a');
  Alcotest.(check bool) "cat empty annihilates" true
    (R.cat R.empty (R.sym 'a') = R.empty);
  Alcotest.(check bool) "star of eps" true (R.star R.eps = R.eps);
  Alcotest.(check bool) "star idempotent" true
    (R.star (R.star (R.sym 'a')) = R.star (R.sym 'a'))

let test_nullable () =
  Alcotest.(check bool) "eps" true (R.nullable R.eps);
  Alcotest.(check bool) "star" true (R.nullable (R.star (R.sym 'a')));
  Alcotest.(check bool) "sym" false (R.nullable (R.sym 'a'));
  Alcotest.(check bool) "opt" true (R.nullable (R.opt (R.sym 'a')))

let test_compile () =
  let n = R.compile classic in
  Alcotest.(check bool) "nfa abb" true (R.N.accepts n (word "abb"));
  Alcotest.(check bool) "nfa babb" true (R.N.accepts n (word "babb"));
  Alcotest.(check bool) "nfa abba" false (R.N.accepts n (word "abba"));
  let e = R.compile R.empty in
  Alcotest.(check bool) "empty language" true (R.N.is_language_empty e);
  let plus_a = R.compile (R.plus (R.sym 'a')) in
  Alcotest.(check bool) "a+ rejects eps" false (R.N.accepts plus_a []);
  Alcotest.(check bool) "a+ accepts aa" true (R.N.accepts plus_a (word "aa"))

(* random regex generator *)
let regex_gen =
  QCheck.Gen.(
    sized_size (int_bound 8) @@ fix (fun self n ->
        if n <= 0 then
          oneof [ return R.eps; map R.sym (oneofl [ 'a'; 'b'; 'c' ]); return R.empty ]
        else
          frequency
            [
              (1, return R.eps);
              (3, map R.sym (oneofl [ 'a'; 'b'; 'c' ]));
              (3, map2 R.alt (self (n / 2)) (self (n / 2)));
              (3, map2 R.cat (self (n / 2)) (self (n / 2)));
              (2, map R.star (self (n / 2)));
            ]))

let prop_thompson_matches_derivatives =
  QCheck.Test.make ~name:"Thompson = Brzozowski" ~count:500
    (QCheck.make
       ~print:(fun (r, w) ->
         Fmt.str "%a on %a" R.pp r Fmt.(Dump.list char) w)
       QCheck.Gen.(pair regex_gen Testkit.Generators.word_gen))
    (fun (r, w) -> R.matches r w = R.N.accepts (R.compile r) w)

let prop_star_absorbs =
  QCheck.Test.make ~name:"w ∈ L(r) implies ww ∈ L(r*)" ~count:300
    (QCheck.make QCheck.Gen.(pair regex_gen Testkit.Generators.word_gen))
    (fun (r, w) ->
      if R.matches r w then R.matches (R.star r) (w @ w) else true)

(* --- regex-defined policies --- *)

let ev = Usage.Event.make

let test_forbid_sequence () =
  (* never write after read, as a forbidden subsequence *)
  let aut =
    Usage.Policy_regex.(
      forbid ~name:"no_w_after_r" ~params:[]
        (R.cat (evp "read") (evp "write")))
  in
  let p = Usage.Policy_lib.instantiate0 aut in
  Alcotest.(check bool) "r then w" false
    (Usage.Policy.respects p [ ev "read"; ev "write" ]);
  Alcotest.(check bool) "interleaved" false
    (Usage.Policy.respects p [ ev "read"; ev "log"; ev "write" ]);
  Alcotest.(check bool) "w then r" true
    (Usage.Policy.respects p [ ev "write"; ev "read" ])

let test_forbid_equals_library_policy () =
  (* the regex rendering of never_after agrees with the hand-written
     automaton on the whole language over a ground alphabet *)
  let aut =
    Usage.Policy_regex.(
      forbid ~name:"re" ~params:[] (R.cat (evp "read") (evp "write")))
  in
  let regex_policy = Usage.Policy_lib.instantiate0 aut in
  let hand =
    Usage.Policy_lib.instantiate0
      (Usage.Policy_lib.never_after ~first:"read" ~then_:"write")
  in
  let alphabet = [ ev "read"; ev "write"; ev "log" ] in
  Alcotest.(check bool) "language-equivalent" true
    (Usage.Policy_ops.equivalent_on ~alphabet regex_policy hand)

let test_forbid_guarded () =
  (* two expensive charges in a row *)
  let big = Usage.Guard.Cmp (Gt, Arg, Param "limit") in
  let aut =
    Usage.Policy_regex.(
      forbid ~name:"two_big" ~params:[ "limit" ]
        (R.cat (evp ~guard:big "charge") (evp ~guard:big "charge")))
  in
  let p = Usage.Usage_automaton.instantiate aut [ Usage.Value.int 50 ] in
  let charge n = ev ~arg:(Usage.Value.int n) "charge" in
  Alcotest.(check bool) "one big fine" true
    (Usage.Policy.respects p [ charge 80 ]);
  Alcotest.(check bool) "two big forbidden" false
    (Usage.Policy.respects p [ charge 80; charge 90 ]);
  Alcotest.(check bool) "big small big fine?" true
    (* the small charge matches no pattern at the middle state, so it is
       skipped; the second big charge then completes the pattern *)
    (Usage.Policy.respects p [ charge 80; charge 10 ] );
  Alcotest.(check bool) "big small big violates (subsequence)" false
    (Usage.Policy.respects p [ charge 80; charge 10; charge 90 ])

let test_forbid_nullable_rejected () =
  Alcotest.(check bool) "nullable rejected" true
    (try
       ignore
         (Usage.Policy_regex.(forbid ~name:"bad" ~params:[] (R.star (evp "x"))));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "matching" `Quick test_matches;
    Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
    Alcotest.test_case "nullability" `Quick test_nullable;
    Alcotest.test_case "compilation" `Quick test_compile;
    QCheck_alcotest.to_alcotest prop_thompson_matches_derivatives;
    QCheck_alcotest.to_alcotest prop_star_absorbs;
    Alcotest.test_case "forbidden sequences" `Quick test_forbid_sequence;
    Alcotest.test_case "regex = library policy" `Quick test_forbid_equals_library_policy;
    Alcotest.test_case "guarded patterns" `Quick test_forbid_guarded;
    Alcotest.test_case "nullable forbidden" `Quick test_forbid_nullable_rejected;
  ]

(* The quantitative extension: cost models, worst/best-case costs of
   expressions, and cost-aware plan selection. *)

open Core

let model =
  Quant.Model.of_list [ ("write", 2.0); ("read", 1.0); ("free", 0.0) ]

let f = Alcotest.float 1e-9
let ev = Hexpr.ev

let test_model () =
  Alcotest.check f "write" 2.0 (Quant.Model.cost model (Usage.Event.make "write"));
  Alcotest.check f "unknown is default" 0.0
    (Quant.Model.cost model (Usage.Event.make "zzz"));
  Alcotest.check f "uniform" 3.0
    (Quant.Model.cost (Quant.Model.uniform 3.0) (Usage.Event.make "any"));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Quant.Model: negative cost for bad") (fun () ->
      ignore (Quant.Model.of_list [ ("bad", -1.0) ]))

let wc h = Quant.Cost.worst_case model h
let bc h = Quant.Cost.best_case model h

let test_straight_line () =
  let h = Hexpr.seq_all [ ev "write"; ev "read"; ev "write" ] in
  Alcotest.(check (option f)) "worst" (Some 5.0) (wc h);
  Alcotest.(check (option f)) "best" (Some 5.0) (bc h)

let test_choice_costs () =
  (* the client may be sent down either branch *)
  let h = Hexpr.branch [ ("a", ev "write"); ("b", ev "read") ] in
  Alcotest.(check (option f)) "worst takes write" (Some 2.0) (wc h);
  Alcotest.(check (option f)) "best takes read" (Some 1.0) (bc h)

let test_free_loop () =
  (* a loop whose events are free: bounded worst case *)
  let h =
    Hexpr.mu "h"
      (Hexpr.branch [ ("more", Hexpr.seq (ev "free") (Hexpr.var "h")); ("stop", ev "write") ])
  in
  Alcotest.(check (option f)) "free loop bounded" (Some 2.0) (wc h);
  Alcotest.(check (option f)) "best exits immediately" (Some 2.0) (bc h)

let test_billable_loop () =
  let h =
    Hexpr.mu "h"
      (Hexpr.branch [ ("more", Hexpr.seq (ev "write") (Hexpr.var "h")); ("stop", Hexpr.nil) ])
  in
  Alcotest.(check (option f)) "billable loop unbounded" None (wc h);
  Alcotest.(check (option f)) "but can terminate for free" (Some 0.0) (bc h)

let test_nonterminating () =
  let h = Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.var "h") ]) in
  Alcotest.(check (option f)) "never terminates" None (bc h);
  Alcotest.(check (option f)) "but costs nothing" (Some 0.0) (wc h)

let test_frames_are_free () =
  let p = List.nth Testkit.Generators.policy_pool 0 in
  let h = Hexpr.frame p (ev "write") in
  Alcotest.(check (option f)) "frame free" (Some 2.0) (wc h)

(* plan-level costs on the cloud-like scenario *)

let storage =
  Hexpr.mu "loop"
    (Hexpr.branch
       [
         ("put", Hexpr.seq (ev "write") (Hexpr.select [ ("ack", Hexpr.var "loop") ]));
         ("fin", Hexpr.nil);
       ])

let cheap_storage =
  Hexpr.mu "loop"
    (Hexpr.branch
       [
         ("put", Hexpr.seq (ev "free") (Hexpr.select [ ("ack", Hexpr.var "loop") ]));
         ("fin", Hexpr.nil);
       ])

let client_two_puts =
  Hexpr.open_ ~rid:1
    (Hexpr.select
       [ ("put", Hexpr.branch [ ("ack", Hexpr.select [ ("put", Hexpr.branch [ ("ack", Hexpr.select [ ("fin", Hexpr.nil) ]) ]) ]) ]) ])

let repo = [ ("store", storage); ("cheap", cheap_storage) ]

let test_plan_cost () =
  let cost loc =
    Quant.Plan_cost.worst_case repo
      (Plan.of_list [ (1, loc) ])
      ("cl", client_two_puts)
      model
  in
  Alcotest.(check (option f)) "two writes" (Some 4.0) (cost "store");
  Alcotest.(check (option f)) "free storage" (Some 0.0) (cost "cheap")

let test_cheapest () =
  match Quant.Plan_cost.cheapest repo ~client:("cl", client_two_puts) model with
  | None -> Alcotest.fail "a valid plan exists"
  | Some priced -> (
      Alcotest.(check (option f)) "cheapest is free" (Some 0.0)
        priced.Quant.Plan_cost.cost;
      match Plan.find priced.Quant.Plan_cost.plan 1 with
      | Some "cheap" -> ()
      | _ -> Alcotest.fail "expected the cheap storage")

let test_unbounded_client () =
  (* a client that may put forever: the billable plan is unbounded *)
  let forever =
    Hexpr.open_ ~rid:1
      (Hexpr.mu "h"
         (Hexpr.select
            [ ("put", Hexpr.branch [ ("ack", Hexpr.var "h") ]); ("fin", Hexpr.nil) ]))
  in
  Alcotest.(check (option f)) "unbounded" None
    (Quant.Plan_cost.worst_case repo (Plan.of_list [ (1, "store") ])
       ("cl", forever) model);
  match Quant.Plan_cost.cheapest repo ~client:("cl", forever) model with
  | Some { Quant.Plan_cost.cost = Some 0.0; plan } -> (
      match Plan.find plan 1 with
      | Some "cheap" -> ()
      | _ -> Alcotest.fail "cheap expected")
  | _ -> Alcotest.fail "the free plan is bounded"

(* properties *)

let prop_best_le_worst =
  QCheck.Test.make ~name:"best-case ≤ worst-case when both exist" ~count:200
    Testkit.Generators.hexpr_arb (fun h ->
      let m = Quant.Model.uniform 1.0 in
      match (Quant.Cost.best_case m h, Quant.Cost.worst_case m h) with
      | Some b, Some w -> b <= w
      | _ -> true)

let prop_zero_model_zero_cost =
  QCheck.Test.make ~name:"free model costs nothing" ~count:200
    Testkit.Generators.hexpr_arb (fun h ->
      Quant.Cost.worst_case (Quant.Model.uniform 0.0) h = Some 0.0)

let prop_worst_monotone_in_model =
  QCheck.Test.make ~name:"worst-case monotone in prices" ~count:150
    Testkit.Generators.hexpr_arb (fun h ->
      let w1 = Quant.Cost.worst_case (Quant.Model.uniform 1.0) h in
      let w2 = Quant.Cost.worst_case (Quant.Model.uniform 2.0) h in
      match (w1, w2) with
      | Some a, Some b -> b >= a
      | None, None -> true
      (* both models price every event positively, so boundedness agrees *)
      | Some _, None | None, Some _ -> false)

let suite =
  [
    Alcotest.test_case "cost models" `Quick test_model;
    Alcotest.test_case "straight line" `Quick test_straight_line;
    Alcotest.test_case "choices" `Quick test_choice_costs;
    Alcotest.test_case "free loop" `Quick test_free_loop;
    Alcotest.test_case "billable loop" `Quick test_billable_loop;
    Alcotest.test_case "non-terminating" `Quick test_nonterminating;
    Alcotest.test_case "framings are free" `Quick test_frames_are_free;
    Alcotest.test_case "plan costs" `Quick test_plan_cost;
    Alcotest.test_case "cheapest plan" `Quick test_cheapest;
    Alcotest.test_case "unbounded client" `Quick test_unbounded_client;
    QCheck_alcotest.to_alcotest prop_best_le_worst;
    QCheck_alcotest.to_alcotest prop_zero_model_zero_cost;
    QCheck_alcotest.to_alcotest prop_worst_monotone_in_model;
  ]

(* --- expected cost (fuel-bounded value iteration) --- *)

let test_expected_straight_line () =
  let h = Hexpr.seq_all [ ev "write"; ev "read" ] in
  Alcotest.check f "deterministic = exact" 3.0 (Quant.Cost.expected model h)

let test_expected_branch () =
  (* a fair branch between a 2.0 and a 1.0 path: expectation 1.5 *)
  let h = Hexpr.branch [ ("a", ev "write"); ("b", ev "read") ] in
  Alcotest.check f "mean of branches" 1.5 (Quant.Cost.expected model h)

let test_expected_loop_converges () =
  (* loop: with probability 1/2 pay 2.0 and retry, else stop.
     E = 1/2 (2 + E) ⇒ E = 2. *)
  let h =
    Hexpr.mu "h"
      (Hexpr.branch
         [ ("more", Hexpr.seq (ev "write") (Hexpr.var "h")); ("stop", Hexpr.nil) ])
  in
  let e = Quant.Cost.expected ~fuel:200 model h in
  Alcotest.(check bool) "close to 2.0" true (Float.abs (e -. 2.0) < 1e-6)

let prop_expected_monotone_in_fuel =
  QCheck.Test.make ~name:"expected cost is monotone in fuel" ~count:150
    Testkit.Generators.hexpr_arb (fun h ->
      let m = Quant.Model.uniform 1.0 in
      Quant.Cost.expected ~fuel:8 m h <= Quant.Cost.expected ~fuel:32 m h +. 1e-9)

let prop_expected_bounded_by_worst =
  QCheck.Test.make ~name:"expected ≤ worst-case when bounded" ~count:150
    Testkit.Generators.hexpr_arb (fun h ->
      let m = Quant.Model.uniform 1.0 in
      match Quant.Cost.worst_case m h with
      | Some w -> Quant.Cost.expected ~fuel:64 m h <= w +. 1e-9
      | None -> true)

(* --- coverage --- *)

let test_coverage () =
  let cov =
    Core.Simulate.coverage ~runs:60 Scenarios.Hotel.repo (fun () ->
        Core.Network.initial ~plan:Scenarios.Hotel.plan1
          [ ("c1", Scenarios.Hotel.client1) ])
  in
  let count k = Option.value (List.assoc_opt k cov) ~default:0 in
  Alcotest.(check int) "every run opens request 1" 60 (count "open:1");
  Alcotest.(check int) "every run opens request 3" 60 (count "open:3");
  Alcotest.(check int) "every run signs" 60 (count "event:sgn");
  Alcotest.(check bool) "both hotel answers occur" true
    (count "chan:bok" > 0 && count "chan:una" > 0);
  Alcotest.(check bool) "pay only on booked runs" true
    (count "chan:pay" <= count "chan:cobo")

let suite =
  suite
  @ [
      Alcotest.test_case "expected: straight line" `Quick test_expected_straight_line;
      Alcotest.test_case "expected: branch" `Quick test_expected_branch;
      Alcotest.test_case "expected: loop converges" `Quick test_expected_loop_converges;
      QCheck_alcotest.to_alcotest prop_expected_monotone_in_fuel;
      QCheck_alcotest.to_alcotest prop_expected_bounded_by_worst;
      Alcotest.test_case "coverage" `Quick test_coverage;
    ]

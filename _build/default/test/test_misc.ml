(* Coverage for the smaller API surfaces: actions, plans, histories,
   schedulers — and cross-scenario execution invariants. *)

open Core

let never_z = List.nth Testkit.Generators.policy_pool 0

(* --- Action --- *)

let test_action_co () =
  Alcotest.(check bool) "co in" true (Action.co (Action.In "a") = Some (Action.Out "a"));
  Alcotest.(check bool) "co out" true (Action.co (Action.Out "a") = Some (Action.In "a"));
  Alcotest.(check bool) "co tau" true (Action.co Action.Tau = None);
  Alcotest.(check bool) "co event" true
    (Action.co (Action.Evt (Usage.Event.make "x")) = None)

let test_action_is_comm () =
  Alcotest.(check bool) "in" true (Action.is_comm (Action.In "a"));
  Alcotest.(check bool) "tau" true (Action.is_comm Action.Tau);
  Alcotest.(check bool) "open" true
    (Action.is_comm (Action.Op { Hexpr.rid = 1; policy = None }));
  Alcotest.(check bool) "event" false
    (Action.is_comm (Action.Evt (Usage.Event.make "x")));
  Alcotest.(check bool) "frame" false (Action.is_comm (Action.Frm_open never_z))

(* --- Plan --- *)

let test_plan_ops () =
  let p1 = Plan.of_list [ (1, "a"); (2, "b") ] in
  let p2 = Plan.of_list [ (3, "c") ] in
  let u = Plan.union p1 p2 in
  Alcotest.(check (list int)) "domain" [ 1; 2; 3 ] (Plan.domain u);
  Alcotest.(check (option string)) "find" (Some "b") (Plan.find u 2);
  Alcotest.(check (option string)) "missing" None (Plan.find u 9);
  Alcotest.(check bool) "conflicting union rejected" true
    (try
       ignore (Plan.union p1 (Plan.of_list [ (1, "z") ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "idempotent union" true
    (Plan.equal u (Plan.union u u));
  Alcotest.(check string) "rendering" "{1[a], 2[b]}" (Fmt.str "%a" Plan.pp p1)

let test_plan_duplicate () =
  Alcotest.(check bool) "duplicate binding rejected" true
    (try
       ignore (Plan.of_list [ (1, "a"); (1, "b") ]);
       false
     with Invalid_argument _ -> true);
  (* re-binding to the same location is fine *)
  Alcotest.(check bool) "same binding tolerated" true
    (Plan.equal (Plan.of_list [ (1, "a"); (1, "a") ]) (Plan.of_list [ (1, "a") ]))

(* --- History.of_actions --- *)

let test_history_of_actions () =
  let acts =
    [
      Action.In "a";
      Action.Evt (Usage.Event.make "x");
      Action.Frm_open never_z;
      Action.Tau;
      Action.Frm_close never_z;
      Action.Out "b";
    ]
  in
  let h = History.of_actions acts in
  Alcotest.(check int) "loggable only" 3 (List.length h);
  Alcotest.(check bool) "balanced" true (History.is_balanced h)

(* --- Hexpr.Infix --- *)

let test_infix () =
  let open Hexpr.Infix in
  let h = Hexpr.ev "x" @. Hexpr.ev "y" @. Hexpr.nil in
  Alcotest.(check bool) "sequencing operator" true
    (Hexpr.equal h (Hexpr.seq (Hexpr.ev "x") (Hexpr.ev "y")))

(* --- schedulers --- *)

let test_scheduler_stopped () =
  (* an exhausted script stops the run *)
  let cfg =
    Network.initial ~plan:Scenarios.Hotel.plan1 [ ("c1", Scenarios.Hotel.client1) ]
  in
  let t = Simulate.run Scenarios.Hotel.repo cfg (Simulate.script []) in
  Alcotest.(check bool) "stopped" true (t.Simulate.outcome = Simulate.Stopped);
  Alcotest.(check int) "no steps" 0 (List.length t.Simulate.steps)

let test_scheduler_fuel () =
  let cfg =
    Network.initial ~plan:Scenarios.Hotel.plan1 [ ("c1", Scenarios.Hotel.client1) ]
  in
  let t = Simulate.run ~max_steps:2 Scenarios.Hotel.repo cfg Simulate.first in
  Alcotest.(check bool) "out of fuel" true (t.Simulate.outcome = Simulate.Out_of_fuel);
  Alcotest.(check int) "two steps" 2 (List.length t.Simulate.steps)

(* --- cross-scenario execution invariants --- *)

(* Every monitored run of ANY plan (valid or not) in every shipped
   scenario maintains: histories are prefixes of balanced and valid. *)
let scenario_plans =
  [
    ( "hotel",
      Scenarios.Hotel.repo,
      ("c1", Scenarios.Hotel.client1),
      Planner.enumerate Scenarios.Hotel.repo
        ~client:("c1", Scenarios.Hotel.client1) );
    ( "ecommerce",
      Scenarios.Ecommerce.repo,
      ("shopper", Scenarios.Ecommerce.shopper),
      Planner.enumerate Scenarios.Ecommerce.repo
        ~client:("shopper", Scenarios.Ecommerce.shopper) );
    ( "mesh",
      Scenarios.Mesh.repo,
      ("shopper", Scenarios.Mesh.shopper),
      Planner.enumerate Scenarios.Mesh.repo
        ~client:("shopper", Scenarios.Mesh.shopper) );
  ]

let test_monitored_runs_always_valid () =
  List.iter
    (fun (name, repo, client, plans) ->
      List.iteri
        (fun i plan ->
          if i mod 3 = 0 (* sample the enumeration *) then
            List.iter
              (fun seed ->
                let cfg = Network.initial_vector [ (plan, client) ] in
                let t = Simulate.run ~max_steps:300 repo cfg (Simulate.random ~seed) in
                List.iter
                  (fun c ->
                    let h = Validity.Monitor.history c.Network.monitor in
                    Alcotest.(check bool)
                      (Fmt.str "%s plan %a seed %d prefix-of-balanced" name
                         Plan.pp plan seed)
                      true
                      (History.is_prefix_of_balanced h);
                    Alcotest.(check bool)
                      (Fmt.str "%s plan %a seed %d valid" name Plan.pp plan seed)
                      true (Validity.valid h))
                  t.Simulate.final)
              [ 1; 2; 3 ])
        plans)
    scenario_plans

let suite =
  [
    Alcotest.test_case "action co" `Quick test_action_co;
    Alcotest.test_case "action is_comm" `Quick test_action_is_comm;
    Alcotest.test_case "plan operations" `Quick test_plan_ops;
    Alcotest.test_case "plan duplicates" `Quick test_plan_duplicate;
    Alcotest.test_case "history of actions" `Quick test_history_of_actions;
    Alcotest.test_case "infix sequencing" `Quick test_infix;
    Alcotest.test_case "stopped scheduler" `Quick test_scheduler_stopped;
    Alcotest.test_case "fuel" `Quick test_scheduler_fuel;
    Alcotest.test_case "monitored runs always valid" `Quick
      test_monitored_runs_always_valid;
  ]

(* Usage automata: guards, instantiation, the paper's Fig. 1 policy (E1),
   and the generic policy library. *)

let ev = Usage.Event.make
let i = Usage.Value.int
let s = Usage.Value.str

let sgn name = ev ~arg:(s name) "sgn"
let price p = ev ~arg:(i p) "price"
let rating t = ev ~arg:(i t) "rating"

let hotel_trace name p t = [ sgn name; price p; rating t ]

(* φ₁ = φ({s1},45,100) and φ₂ = φ({s1,s3},40,70), as in §2 *)
let phi1 = Scenarios.Hotel.phi1
let phi2 = Scenarios.Hotel.phi2

let respects = Usage.Policy.respects

let test_policy_ids () =
  Alcotest.(check string) "phi1 id" "phi({s1},45,100)" (Usage.Policy.id phi1);
  Alcotest.(check string) "phi2 id" "phi({s1,s3},40,70)" (Usage.Policy.id phi2)

let test_fig1_phi1 () =
  (* S1: black-listed *)
  Alcotest.(check bool) "s1 violates phi1" false
    (respects phi1 (hotel_trace "s1" 45 80));
  (* S2: price 70 > 45 but rating 100 ≥ 100 *)
  Alcotest.(check bool) "s2 respects phi1" true
    (respects phi1 (hotel_trace "s2" 70 100));
  (* S3: price 90 > 45 but rating 100 ≥ 100 *)
  Alcotest.(check bool) "s3 respects phi1" true
    (respects phi1 (hotel_trace "s3" 90 100));
  (* S4: price 50 > 45 and rating 90 < 100 *)
  Alcotest.(check bool) "s4 violates phi1" false
    (respects phi1 (hotel_trace "s4" 50 90))

let test_fig1_phi2 () =
  Alcotest.(check bool) "s1 violates phi2" false
    (respects phi2 (hotel_trace "s1" 45 80));
  Alcotest.(check bool) "s2 respects phi2" true
    (respects phi2 (hotel_trace "s2" 70 100));
  Alcotest.(check bool) "s3 violates phi2 (black list)" false
    (respects phi2 (hotel_trace "s3" 90 100));
  Alcotest.(check bool) "s4 respects phi2" true
    (respects phi2 (hotel_trace "s4" 50 90))

let test_fig1_boundaries () =
  (* price exactly at the threshold is fine regardless of rating *)
  Alcotest.(check bool) "price = p ok" true
    (respects phi1 (hotel_trace "s2" 45 0));
  (* rating exactly at the threshold saves a high price *)
  Alcotest.(check bool) "rating = t ok" true
    (respects phi1 (hotel_trace "s2" 46 100));
  Alcotest.(check bool) "rating just below" false
    (respects phi1 (hotel_trace "s2" 46 99))

let test_first_violation () =
  Alcotest.(check (option int)) "violation at sgn" (Some 0)
    (Usage.Policy.first_violation phi1 (hotel_trace "s1" 45 80));
  Alcotest.(check (option int)) "violation at rating" (Some 2)
    (Usage.Policy.first_violation phi1 (hotel_trace "s4" 50 90));
  Alcotest.(check (option int)) "no violation" None
    (Usage.Policy.first_violation phi1 (hotel_trace "s3" 90 100))

let test_prefix_ok () =
  (* a trace stopping before the rating is not (yet) a violation *)
  Alcotest.(check bool) "prefix ok" true (respects phi1 [ sgn "s4"; price 50 ])

let test_cursors () =
  let c0 = Usage.Policy.start phi1 in
  Alcotest.(check bool) "start not offending" false
    (Usage.Policy.offending phi1 c0);
  let c1 = Usage.Policy.advance phi1 c0 (sgn "s1") in
  Alcotest.(check bool) "offending after blacklisted sgn" true
    (Usage.Policy.offending phi1 c1);
  let replayed = Usage.Policy.replay phi1 [ sgn "s4"; price 50; rating 90 ] in
  Alcotest.(check bool) "replay offending" true
    (Usage.Policy.offending phi1 replayed)

let test_instantiate_arity () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Usage_automaton.instantiate: phi expects 3 parameters")
    (fun () ->
      ignore (Usage.Usage_automaton.instantiate Usage.Policy_lib.hotel [ i 1 ]))

let test_make_validation () =
  Alcotest.check_raises "duplicate parameter"
    (Invalid_argument "Usage_automaton.make: duplicate parameter") (fun () ->
      ignore
        (Usage.Usage_automaton.make ~name:"bad" ~params:[ "p"; "p" ] ~init:0
           ~offending:[] ~edges:[]));
  (try
     ignore
       (Usage.Usage_automaton.make ~name:"bad" ~params:[] ~init:0 ~offending:[]
          ~edges:
            [ Usage.Usage_automaton.edge 0 "x" (Usage.Guard.Cmp (Le, Arg, Param "q")) 1 ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_never () =
  let p = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.never "pay") in
  Alcotest.(check bool) "empty ok" true (respects p []);
  Alcotest.(check bool) "other events ok" true (respects p [ ev "x"; ev "y" ]);
  Alcotest.(check bool) "pay violates" false (respects p [ ev "x"; ev "pay" ])

let test_never_after () =
  let p =
    Usage.Policy_lib.instantiate0
      (Usage.Policy_lib.never_after ~first:"read" ~then_:"write")
  in
  Alcotest.(check bool) "write before read ok" true
    (respects p [ ev "write"; ev "read" ]);
  Alcotest.(check bool) "write after read bad" false
    (respects p [ ev "read"; ev "write" ]);
  Alcotest.(check bool) "read read write bad" false
    (respects p [ ev "read"; ev "read"; ev "write" ])

let test_at_most () =
  let p = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.at_most ~n:2 "x") in
  Alcotest.(check bool) "two ok" true (respects p [ ev "x"; ev "x" ]);
  Alcotest.(check bool) "three bad" false (respects p [ ev "x"; ev "x"; ev "x" ]);
  let p0 = Usage.Policy_lib.instantiate0 (Usage.Policy_lib.at_most ~n:0 "x") in
  Alcotest.(check bool) "zero: none ok" true (respects p0 []);
  Alcotest.(check bool) "zero: one bad" false (respects p0 [ ev "x" ])

let test_requires_before () =
  let p =
    Usage.Policy_lib.instantiate0
      (Usage.Policy_lib.requires_before ~before:"auth" ~target:"pay")
  in
  Alcotest.(check bool) "auth then pay ok" true (respects p [ ev "auth"; ev "pay" ]);
  Alcotest.(check bool) "bare pay bad" false (respects p [ ev "pay" ]);
  Alcotest.(check bool) "no pay ok" true (respects p [ ev "auth"; ev "auth" ])

let test_guard_eval () =
  let env = [ ("p", i 10); ("bl", Usage.Value.set [ s "a"; s "b" ]) ] in
  let eval g arg = Usage.Guard.eval env g (Some arg) in
  Alcotest.(check bool) "le true" true (eval (Cmp (Le, Arg, Param "p")) (i 10));
  Alcotest.(check bool) "le false" false (eval (Cmp (Le, Arg, Param "p")) (i 11));
  Alcotest.(check bool) "member" true (eval (Member (Arg, Param "bl")) (s "a"));
  Alcotest.(check bool) "not member" true
    (eval (Not_member (Arg, Param "bl")) (s "c"));
  Alcotest.(check bool) "and" true
    (eval (And (Cmp (Ge, Arg, Const (i 5)), Cmp (Le, Arg, Param "p"))) (i 7));
  Alcotest.(check bool) "or" true
    (eval (Or (Cmp (Gt, Arg, Param "p"), Cmp (Eq, Arg, Const (i 3)))) (i 3));
  Alcotest.(check bool) "not" true (eval (Not (Cmp (Eq, Arg, Const (i 3)))) (i 4));
  (* conservative failures *)
  Alcotest.(check bool) "missing param" false
    (eval (Cmp (Le, Arg, Param "zzz")) (i 1));
  Alcotest.(check bool) "order on strings" false
    (eval (Cmp (Le, Arg, Const (s "x"))) (s "x"));
  Alcotest.(check bool) "missing arg" false
    (Usage.Guard.eval env (Cmp (Le, Arg, Param "p")) None)

let test_value () =
  Alcotest.(check bool) "set dedup" true
    (Usage.Value.equal (Usage.Value.set [ i 1; i 1; i 2 ]) (Usage.Value.set [ i 2; i 1 ]));
  Alcotest.(check bool) "mem set" true (Usage.Value.mem (i 1) (Usage.Value.set [ i 1 ]));
  Alcotest.(check bool) "mem scalar" true (Usage.Value.mem (i 1) (i 1));
  Alcotest.(check (option int)) "as_int" (Some 3) (Usage.Value.as_int (i 3));
  Alcotest.(check (option int)) "as_int str" None (Usage.Value.as_int (s "x"))

let prop_respects_iff_no_first_violation =
  QCheck.Test.make ~name:"respects iff first_violation = None" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair Testkit.Generators.policy_gen (list_size (int_bound 12) Testkit.Generators.event_gen)))
    (fun (p, tr) ->
      Usage.Policy.respects p tr = (Usage.Policy.first_violation p tr = None))

let prop_offending_absorbing =
  QCheck.Test.make ~name:"violations are not forgotten (absorbing)" ~count:200
    (QCheck.make
       QCheck.Gen.(
         triple Testkit.Generators.policy_gen
           (list_size (int_bound 8) Testkit.Generators.event_gen)
           (list_size (int_bound 8) Testkit.Generators.event_gen)))
    (fun (p, tr1, tr2) ->
      QCheck.assume (not (Usage.Policy.respects p tr1));
      not (Usage.Policy.respects p (tr1 @ tr2)))

let suite =
  [
    Alcotest.test_case "policy ids" `Quick test_policy_ids;
    Alcotest.test_case "Fig.1 against phi1 (E1)" `Quick test_fig1_phi1;
    Alcotest.test_case "Fig.1 against phi2 (E1)" `Quick test_fig1_phi2;
    Alcotest.test_case "Fig.1 threshold boundaries" `Quick test_fig1_boundaries;
    Alcotest.test_case "first violation index" `Quick test_first_violation;
    Alcotest.test_case "prefixes are not violations" `Quick test_prefix_ok;
    Alcotest.test_case "cursors" `Quick test_cursors;
    Alcotest.test_case "instantiation arity" `Quick test_instantiate_arity;
    Alcotest.test_case "automaton validation" `Quick test_make_validation;
    Alcotest.test_case "never" `Quick test_never;
    Alcotest.test_case "never-after" `Quick test_never_after;
    Alcotest.test_case "at-most" `Quick test_at_most;
    Alcotest.test_case "requires-before" `Quick test_requires_before;
    Alcotest.test_case "guard evaluation" `Quick test_guard_eval;
    Alcotest.test_case "values" `Quick test_value;
    QCheck_alcotest.to_alcotest prop_respects_iff_no_first_violation;
    QCheck_alcotest.to_alcotest prop_offending_absorbing;
  ]

let test_alternate () =
  let p =
    Usage.Policy_lib.instantiate0
      (Usage.Policy_lib.alternate ~first:"lock" ~second:"unlock")
  in
  let l = ev "lock" and u = ev "unlock" in
  Alcotest.(check bool) "empty" true (respects p []);
  Alcotest.(check bool) "lock unlock lock" true (respects p [ l; u; l ]);
  Alcotest.(check bool) "double lock" false (respects p [ l; l ]);
  Alcotest.(check bool) "unlock first" false (respects p [ u ]);
  Alcotest.(check bool) "others ignored" true (respects p [ l; ev "x"; u ])

let test_mutually_exclusive () =
  let p =
    Usage.Policy_lib.instantiate0 (Usage.Policy_lib.mutually_exclusive "dev" "prod")
  in
  let d = ev "dev" and pr = ev "prod" in
  Alcotest.(check bool) "dev only" true (respects p [ d; d ]);
  Alcotest.(check bool) "prod only" true (respects p [ pr; pr ]);
  Alcotest.(check bool) "dev then prod" false (respects p [ d; pr ]);
  Alcotest.(check bool) "prod then dev" false (respects p [ pr; d ])

let test_arg_at_most () =
  let p =
    Usage.Usage_automaton.instantiate
      (Usage.Policy_lib.arg_at_most "charge")
      [ i 100 ]
  in
  let charge n = ev ~arg:(i n) "charge" in
  Alcotest.(check bool) "at limit" true (respects p [ charge 100 ]);
  Alcotest.(check bool) "over" false (respects p [ charge 101 ]);
  (* an argument-less charge cannot be compared: guard conservatively
     fails, so the event stays put (no violation) *)
  Alcotest.(check bool) "no argument: no step" true (respects p [ ev "charge" ])

let suite =
  suite
  @ [
      Alcotest.test_case "alternate" `Quick test_alternate;
      Alcotest.test_case "mutually exclusive" `Quick test_mutually_exclusive;
      Alcotest.test_case "argument bound" `Quick test_arg_at_most;
    ]

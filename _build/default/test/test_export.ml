(* DOT exports and batch simulation statistics. *)

open Core

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_hexpr_dot () =
  let out = Fmt.str "%a" Export.hexpr_dot Scenarios.Hotel.s3 in
  Alcotest.(check bool) "digraph" true (contains out "digraph hexpr");
  Alcotest.(check bool) "has event label" true (contains out "sgn(s3)");
  Alcotest.(check bool) "has terminal" true (contains out "doublecircle");
  Alcotest.(check bool) "has init" true (contains out "init ->")

let test_contract_dot () =
  let out =
    Fmt.str "%a" Export.contract_dot (Contract.project Scenarios.Hotel.broker)
  in
  Alcotest.(check bool) "digraph" true (contains out "digraph contract");
  Alcotest.(check bool) "input label" true (contains out "req?");
  Alcotest.(check bool) "output label" true (contains out "cobo!")

let test_client_graph_dot () =
  let out =
    Fmt.str "%t"
      (Export.client_graph_dot Scenarios.Hotel.repo Scenarios.Hotel.plan1
         ("c1", Scenarios.Hotel.client1))
  in
  Alcotest.(check bool) "digraph" true (contains out "digraph client");
  Alcotest.(check bool) "shows sync moves" true (contains out "tau(req)");
  Alcotest.(check bool) "no blocked moves under pi1" false (contains out "blocked by")

let test_client_graph_blocked () =
  (* under the black-listed plan, the graph shows the blocked event *)
  let out =
    Fmt.str "%t"
      (Export.client_graph_dot Scenarios.Hotel.repo Scenarios.Hotel.plan2_s3
         ("c2", Scenarios.Hotel.client2))
  in
  Alcotest.(check bool) "dashed blocked edge" true (contains out "blocked by");
  Alcotest.(check bool) "names the policy" true
    (contains out "phi({s1,s3},40,70)");
  Alcotest.(check bool) "stuck state highlighted" true (contains out "color=red")

let test_batch_valid_plan () =
  let stats =
    Simulate.batch ~runs:40 Scenarios.Hotel.repo (fun () ->
        Network.initial ~plan:Scenarios.Hotel.plan1
          [ ("c1", Scenarios.Hotel.client1) ])
  in
  Alcotest.(check int) "all complete" 40 stats.Simulate.completed;
  Alcotest.(check int) "all valid" 40 stats.Simulate.outcomes_valid;
  Alcotest.(check int) "none stuck" 0 stats.Simulate.stuck;
  Alcotest.(check bool) "sensible step count" true
    (stats.Simulate.avg_steps >= 11.0 && stats.Simulate.avg_steps <= 13.0);
  Alcotest.(check (float 1e-9)) "three events per run" 3.0 stats.Simulate.avg_events

let test_batch_insecure_plan () =
  let stats =
    Simulate.batch ~runs:40 Scenarios.Hotel.repo (fun () ->
        Network.initial
          ~plan:(Plan.of_list [ (1, "br"); (3, "s1") ])
          [ ("c1", Scenarios.Hotel.client1) ])
  in
  (* the monitor blocks the black-listed signing, so every run strands *)
  Alcotest.(check int) "all stuck" 40 stats.Simulate.stuck;
  (* but no history is ever invalid: the monitor did its job *)
  Alcotest.(check int) "histories stay valid" 40 stats.Simulate.outcomes_valid

let suite =
  [
    Alcotest.test_case "hexpr dot" `Quick test_hexpr_dot;
    Alcotest.test_case "contract dot" `Quick test_contract_dot;
    Alcotest.test_case "client graph dot" `Quick test_client_graph_dot;
    Alcotest.test_case "blocked moves rendered" `Quick test_client_graph_blocked;
    Alcotest.test_case "batch: valid plan" `Quick test_batch_valid_plan;
    Alcotest.test_case "batch: insecure plan" `Quick test_batch_insecure_plan;
  ]

(* Histories and the validity machinery: the literal definition, the
   incremental monitor, the finite abstraction, and whole-expression
   static validity. *)

open Core

let never_z = List.nth Testkit.Generators.policy_pool 0
let no_y_after_x = List.nth Testkit.Generators.policy_pool 1
let ev name = History.Ev (Usage.Event.make name)
let x = ev "x"
let y = ev "y"
let z = ev "z"

let test_flatten_active () =
  let h = [ History.Op never_z; x; History.Cl never_z; y ] in
  Alcotest.(check int) "flatten drops frames" 2 (List.length (History.flatten h));
  Alcotest.(check int) "nothing active" 0 (List.length (History.active h));
  let h2 = [ History.Op never_z; History.Op no_y_after_x; History.Cl never_z ] in
  Alcotest.(check (list string)) "one active"
    [ Usage.Policy.id no_y_after_x ]
    (List.map Usage.Policy.id (History.active h2))

let test_active_multiset () =
  let h = [ History.Op never_z; History.Op never_z; History.Cl never_z ] in
  Alcotest.(check int) "multiset keeps one" 1 (List.length (History.active h))

let test_balanced () =
  Alcotest.(check bool) "empty balanced" true (History.is_balanced []);
  Alcotest.(check bool) "open only is prefix" true
    (History.is_prefix_of_balanced [ History.Op never_z ]);
  Alcotest.(check bool) "open only not balanced" false
    (History.is_balanced [ History.Op never_z ]);
  Alcotest.(check bool) "close first invalid" false
    (History.is_prefix_of_balanced [ History.Cl never_z ]);
  Alcotest.(check bool) "round trip balanced" true
    (History.is_balanced [ History.Op never_z; x; History.Cl never_z ])

let test_prefixes () =
  Alcotest.(check int) "n+1 prefixes" 4 (List.length (History.prefixes [ x; y; z ]))

let test_valid_basic () =
  Alcotest.(check bool) "empty valid" true (Validity.valid []);
  Alcotest.(check bool) "inactive policy ignored" true
    (Validity.valid [ z ]);
  Alcotest.(check bool) "active policy enforced" false
    (Validity.valid [ History.Op never_z; z ]);
  Alcotest.(check bool) "closed policy not enforced" true
    (Validity.valid [ History.Op never_z; History.Cl never_z; z ])

(* The paper's §3.1 example: φ = no α after γ.
   γ α Lφ β is NOT valid (the past γα already offends φ when φ opens),
   while Lφ γ Mφ α β IS valid. *)
let test_history_dependence () =
  let phi =
    Usage.Policy_lib.instantiate0
      (Usage.Policy_lib.never_after ~first:"g" ~then_:"a")
  in
  let g = ev "g" and a = ev "a" and b = ev "b" in
  let bad = [ g; a; History.Op phi; b ] in
  Alcotest.(check bool) "retroactive violation" false (Validity.valid bad);
  let good = [ History.Op phi; g; History.Cl phi; a; b ] in
  Alcotest.(check bool) "closed in time" true (Validity.valid good)

let test_check_diagnostics () =
  let phi = never_z in
  match Validity.check [ History.Op phi; x; z; y ] with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v ->
      Alcotest.(check string) "policy" (Usage.Policy.id phi)
        (Usage.Policy.id v.Validity.policy);
      Alcotest.(check int) "prefix length" 3 (List.length v.Validity.prefix)

let test_monitor_close_unmatched () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Validity.Monitor.push Validity.Monitor.empty (History.Cl never_z));
       false
     with Invalid_argument _ -> true)

let test_push_unchecked () =
  let m = Validity.Monitor.push_unchecked Validity.Monitor.empty (History.Op never_z) in
  let m = Validity.Monitor.push_unchecked m z in
  let m = Validity.Monitor.push_unchecked m z in
  Alcotest.(check int) "history logged past violation" 3
    (List.length (Validity.Monitor.history m))

let test_abstract_matches_monitor () =
  let uni = Testkit.Generators.policy_pool in
  let items = [ History.Op never_z; x; History.Cl never_z; History.Op no_y_after_x; y ] in
  let rec run_abs abs = function
    | [] -> true
    | i :: rest -> (
        match Validity.Abstract.push abs i with
        | Ok abs -> run_abs abs rest
        | Error _ -> false)
  in
  Alcotest.(check bool) "abstract agrees with spec"
    (Validity.valid items)
    (run_abs (Validity.Abstract.init uni) items)

let test_abstract_unknown_policy () =
  let abs = Validity.Abstract.init [] in
  Alcotest.(check bool) "raises on unknown" true
    (try
       ignore (Validity.Abstract.push abs (History.Op never_z));
       false
     with Invalid_argument _ -> true)

let test_check_expr () =
  (* φ[ #z ] where φ = never z: invalid *)
  let bad = Hexpr.frame never_z (Hexpr.ev "z") in
  (match Validity.check_expr bad with
  | Ok () -> Alcotest.fail "expected violation"
  | Error v ->
      Alcotest.(check string) "policy" (Usage.Policy.id never_z)
        (Usage.Policy.id v.Validity.policy));
  (* #z . φ[ #x ]: the z precedes the framing but φ is history-dependent *)
  let retro = Hexpr.seq (Hexpr.ev "z") (Hexpr.frame never_z (Hexpr.ev "x")) in
  Alcotest.(check bool) "retroactive in expressions" true
    (Result.is_error (Validity.check_expr retro));
  (* #z alone: fine *)
  Alcotest.(check bool) "no active policy" true
    (Result.is_ok (Validity.check_expr (Hexpr.ev "z")));
  (* only one branch violates: still an error (all histories must be valid) *)
  let one_bad =
    Hexpr.frame never_z
      (Hexpr.branch [ ("a", Hexpr.ev "x"); ("b", Hexpr.ev "z") ])
  in
  Alcotest.(check bool) "branch violation found" true
    (Result.is_error (Validity.check_expr one_bad))

let test_check_expr_open_as_frame () =
  (* open_{r,φ} behaves as Lφ…Mφ for static validity *)
  let bad = Hexpr.open_ ~rid:1 ~policy:never_z (Hexpr.ev "z") in
  Alcotest.(check bool) "session policy enforced" true
    (Result.is_error (Validity.check_expr bad));
  let ok = Hexpr.open_ ~rid:1 (Hexpr.ev "z") in
  Alcotest.(check bool) "no policy, no check" true
    (Result.is_ok (Validity.check_expr ok))

let test_check_expr_recursion () =
  (* μh. a?.#x.h under at_most 2 x: the third iteration violates *)
  let at_most_2x = List.nth Testkit.Generators.policy_pool 2 in
  let loop =
    Hexpr.frame at_most_2x
      (Hexpr.mu "h" (Hexpr.branch [ ("a", Hexpr.seq (Hexpr.ev "x") (Hexpr.var "h")); ("b", Hexpr.nil) ]))
  in
  match Validity.check_expr loop with
  | Ok () -> Alcotest.fail "expected violation in third iteration"
  | Error v ->
      let events = History.flatten v.Validity.prefix in
      Alcotest.(check int) "three x events" 3 (List.length events)

(* properties *)

let prop_check_agrees_with_valid =
  QCheck.Test.make ~name:"incremental check = literal definition" ~count:400
    Testkit.Generators.history_arb (fun h ->
      Validity.valid h = Result.is_ok (Validity.check h))

let prop_abstract_agrees =
  QCheck.Test.make ~name:"abstract monitor = literal definition" ~count:400
    Testkit.Generators.history_arb (fun h ->
      let rec run abs = function
        | [] -> true
        | i :: rest -> (
            match Validity.Abstract.push abs i with
            | Ok abs -> run abs rest
            | Error _ -> false)
      in
      Validity.valid h = run (Validity.Abstract.init Testkit.Generators.policy_pool) h)

let prop_valid_prefix_closed =
  QCheck.Test.make ~name:"validity is prefix-closed" ~count:200
    Testkit.Generators.history_arb (fun h ->
      QCheck.assume (Validity.valid h);
      List.for_all Validity.valid (History.prefixes h))

let suite =
  [
    Alcotest.test_case "flatten and active" `Quick test_flatten_active;
    Alcotest.test_case "active is a multiset" `Quick test_active_multiset;
    Alcotest.test_case "balanced histories" `Quick test_balanced;
    Alcotest.test_case "prefixes" `Quick test_prefixes;
    Alcotest.test_case "validity basics" `Quick test_valid_basic;
    Alcotest.test_case "history dependence (§3.1 example)" `Quick test_history_dependence;
    Alcotest.test_case "violation diagnostics" `Quick test_check_diagnostics;
    Alcotest.test_case "unmatched close" `Quick test_monitor_close_unmatched;
    Alcotest.test_case "unchecked logging" `Quick test_push_unchecked;
    Alcotest.test_case "abstract monitor" `Quick test_abstract_matches_monitor;
    Alcotest.test_case "abstract unknown policy" `Quick test_abstract_unknown_policy;
    Alcotest.test_case "static validity of expressions" `Quick test_check_expr;
    Alcotest.test_case "opens act as framings" `Quick test_check_expr_open_as_frame;
    Alcotest.test_case "static validity through recursion" `Quick test_check_expr_recursion;
    QCheck_alcotest.to_alcotest prop_check_agrees_with_valid;
    QCheck_alcotest.to_alcotest prop_abstract_agrees;
    QCheck_alcotest.to_alcotest prop_valid_prefix_closed;
  ]
